package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestMutateTraceMachineRegions is the tracing acceptance test: a PATCH
// against a distributed engine must produce a trace whose machine-region
// child spans pair the modeled cost with measured wall-clock for every
// phase the MutateResult reports.
func TestMutateTraceMachineRegions(t *testing.T) {
	tr := obs.NewTracer(16)
	s := New(Config{Workers: 1, DynProcs: 2, Tracer: tr})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "POST", "/graphs/g",
		GraphSpec{Kind: "uniform", N: 30, M: 120, Seed: 1}, http.StatusCreated, nil)

	var res MutateResult
	doJSON(t, ts, "PATCH", "/graphs/g",
		MutateRequest{Mutations: []repro.Mutation{
			{Op: repro.MutAddVertex},
			{Op: repro.MutAddEdge, U: 0, V: 30, W: 1},
		}},
		http.StatusOK, &res)
	if res.Procs != 2 {
		t.Fatalf("procs = %d, want distributed run", res.Procs)
	}
	if len(res.Phases) == 0 {
		t.Fatal("distributed mutate reported no phases")
	}

	// The root span ends just after the response is written; poll.
	var spans []obs.SpanRecord
	waitFor(t, "mutate trace", func() bool {
		for _, trc := range tr.Traces() {
			for _, rec := range trc {
				if rec.Name == "http.mutate" {
					spans = trc
					return true
				}
			}
		}
		return false
	})

	byName := map[string][]obs.SpanRecord{}
	id2name := map[string]string{}
	for _, rec := range spans {
		byName[rec.Name] = append(byName[rec.Name], rec)
		id2name[rec.Span] = rec.Name
	}
	for _, want := range []string{"http.mutate", "server.mutate", "dynamic.apply", "machine.region"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace has no %q span; got %v", want, names(spans))
		}
	}
	// Parent chain: server.mutate under http.mutate, dynamic.apply under
	// server.mutate, machine.region under dynamic.apply.
	for child, parent := range map[string]string{
		"server.mutate": "http.mutate", "dynamic.apply": "server.mutate",
		"machine.region": "dynamic.apply",
	} {
		if got := id2name[byName[child][0].Parent]; got != parent {
			t.Errorf("%s parent = %q, want %q", child, got, parent)
		}
	}

	// Every phase in the MutateResult appears as a phase.<label> child of a
	// machine.region span, carrying both the modeled cost and wall-clock.
	regions := map[string]bool{}
	for _, rec := range byName["machine.region"] {
		regions[rec.Span] = true
		for _, key := range []string{"model_sec", "wall_ms", "bytes", "msgs", "flops"} {
			if _, ok := rec.Attrs[key]; !ok {
				t.Errorf("machine.region span missing attr %q: %v", key, rec.Attrs)
			}
		}
	}
	for _, ph := range res.Phases {
		label, ok := obs.PhaseLabel(ph.Name)
		if !ok {
			t.Errorf("phase %q missing from the obs phase-label table", ph.Name)
		}
		found := false
		for _, rec := range byName["phase."+label] {
			if !regions[rec.Parent] {
				t.Errorf("phase.%s span parented outside machine.region", label)
			}
			if _, ok := rec.Attrs["model_sec"]; !ok {
				t.Errorf("phase.%s span missing model_sec: %v", label, rec.Attrs)
			}
			if _, ok := rec.Attrs["wall_ms"]; !ok {
				t.Errorf("phase.%s span missing wall_ms: %v", label, rec.Attrs)
			}
			found = true
		}
		if !found {
			t.Errorf("reported phase %q has no phase.%s span; spans: %v", ph.Name, label, names(spans))
		}
	}
}

func names(spans []obs.SpanRecord) []string {
	out := make([]string, len(spans))
	for i, rec := range spans {
		out[i] = rec.Name
	}
	return out
}

// TestQueryTraceSource pins the query span's answer-source attribute
// across the cache-miss and cache-hit paths.
func TestQueryTraceSource(t *testing.T) {
	tr := obs.NewTracer(16)
	s := New(Config{Workers: 1, Tracer: tr})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "POST", "/graphs/g",
		GraphSpec{Kind: "uniform", N: 20, M: 60, Seed: 1}, http.StatusCreated, nil)
	for range 2 {
		doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "g"}, http.StatusOK, nil)
	}

	sources := map[string]bool{}
	waitFor(t, "two query traces", func() bool {
		sources = map[string]bool{}
		for _, trc := range tr.Traces() {
			for _, rec := range trc {
				if rec.Name == "server.query" {
					if src, ok := rec.Attrs["source"].(string); ok {
						sources[src] = true
					}
				}
			}
		}
		return sources["compute"] && sources["cache"]
	})
}

// TestMetricsEndpointDeterministic exercises the registry through the real
// HTTP surface under concurrent load, then checks that back-to-back
// scrapes of a quiescent server are byte-identical and carry the counters
// /stats reports. Run with -race this also proves scraping is safe against
// concurrent writers.
func TestMetricsEndpointDeterministic(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "POST", "/graphs/g",
		GraphSpec{Kind: "uniform", N: 20, M: 60, Seed: 1}, http.StatusCreated, nil)

	scrape := func() string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := copyAll(&b, resp); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	var wg sync.WaitGroup
	for w := range 4 {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range 10 {
				doJSON(t, ts, "POST", "/query",
					QueryRequest{Graph: "g", K: (w*10+i)%5 + 1}, http.StatusOK, nil)
				_ = scrape() // scrape mid-load: must not race with writers
			}
		}(w)
	}
	wg.Wait()

	first := scrape()
	for i := range 3 {
		if got := scrape(); got != first {
			t.Fatalf("scrape %d differs from first:\n%s\n---\n%s", i+2, got, first)
		}
	}
	for _, want := range []string{
		"# TYPE mfbc_queries_total counter",
		"# TYPE mfbc_query_duration_seconds histogram",
		"mfbc_query_duration_seconds_bucket{le=\"+Inf\",source=\"compute\"}",
		"mfbc_http_requests_total{code=\"2xx\",route=\"query\"} 40",
		"mfbc_graphs 1",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if st := s.Stats(); st.Queries != 40 {
		t.Errorf("stats queries = %d, want 40", st.Queries)
	}
}

func copyAll(b *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		b.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestWriteJSONEncodeErrorCounted: an unencodable response value must land
// on mfbc_encode_errors_total (and the /stats compat view) instead of
// vanishing.
func TestWriteJSONEncodeErrorCounted(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := New(Config{Workers: 1, Logger: quiet})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if got := s.Stats().EncodeErrors; got != 1 {
		t.Fatalf("encode errors = %d, want 1", got)
	}
	rec = httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]string{"ok": "yes"})
	if got := s.Stats().EncodeErrors; got != 1 {
		t.Fatalf("encode errors after clean write = %d, want 1", got)
	}
}

// TestTraceSamplingErrorAndSlowKeep: with the tracer's head sampler at
// rate 0, only error and slow requests retain traces — everything else is
// sampled out — and the http duration histogram carries exemplar span IDs
// only for retained traces.
func TestTraceSamplingErrorAndSlowKeep(t *testing.T) {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	tr := obs.NewTracer(16)
	tr.SetSampleRate(0)
	s := New(Config{Workers: 1, Tracer: tr, Logger: quiet})
	ts := httptest.NewServer(NewMux(s))
	defer ts.Close()

	doJSON(t, ts, "GET", "/healthz", nil, http.StatusOK, nil) // sampled out
	doJSON(t, ts, "POST", "/query", QueryRequest{Graph: "nope"}, http.StatusNotFound, nil)

	waitFor(t, "error trace kept past the sampler", func() bool {
		for _, trc := range tr.Traces() {
			for _, rec := range trc {
				if rec.Name == "http.query" {
					return true
				}
			}
		}
		return false
	})
	for _, trc := range tr.Traces() {
		for _, rec := range trc {
			if rec.Name == "http.healthz" {
				t.Fatal("sampled-out healthz trace reached the ring")
			}
		}
	}
	if tr.SampledOut() == 0 {
		t.Fatal("successful request was not sampled out at rate 0")
	}

	// Every duration-histogram exemplar must point at a trace that is
	// actually retrievable from the ring; the sampled-out route gets none.
	ringIDs := map[string]bool{}
	for _, trc := range tr.Traces() {
		for _, rec := range trc {
			ringIDs[rec.Trace] = true
		}
	}
	text := s.Registry().Text()
	sawExemplar := false
	for _, line := range strings.Split(text, "\n") {
		series, rest, ok := strings.Cut(line, " # ")
		if !ok || !strings.HasPrefix(series, "mfbc_http_request_duration_seconds_bucket") {
			continue
		}
		sawExemplar = true
		if strings.Contains(series, `route="healthz"`) {
			t.Fatalf("sampled-out route carries an exemplar: %s", line)
		}
		marker := `trace_id="`
		i := strings.Index(rest, marker)
		if i < 0 {
			t.Fatalf("exemplar without trace_id: %s", line)
		}
		id := rest[i+len(marker):]
		id = id[:strings.IndexByte(id, '"')]
		if !ringIDs[id] {
			t.Fatalf("exemplar references unkept trace %q: %s", id, line)
		}
	}
	if !sawExemplar {
		t.Fatalf("no exemplar on the http duration histogram:\n%s", text)
	}

	// Slow requests force-keep too: with a 1ns threshold every request
	// counts as slow, so even a 200 survives rate 0.
	tr2 := obs.NewTracer(16)
	tr2.SetSampleRate(0)
	s2 := New(Config{Workers: 1, Tracer: tr2, Logger: quiet, SlowQuery: time.Nanosecond})
	ts2 := httptest.NewServer(NewMux(s2))
	defer ts2.Close()
	doJSON(t, ts2, "GET", "/healthz", nil, http.StatusOK, nil)
	waitFor(t, "slow trace kept past the sampler", func() bool {
		for _, trc := range tr2.Traces() {
			for _, rec := range trc {
				if rec.Name == "http.healthz" {
					return true
				}
			}
		}
		return false
	})
}

// TestDebugTracesEndpoint: 404 without a tracer, JSONL with one.
func TestDebugTracesEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewMux(s))
	resp, err := ts.Client().Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traces without tracer: status %d, want 404", resp.StatusCode)
	}

	tr := obs.NewTracer(4)
	s2 := New(Config{Workers: 1, Tracer: tr})
	ts2 := httptest.NewServer(NewMux(s2))
	defer ts2.Close()
	doJSON(t, ts2, "GET", "/healthz", nil, http.StatusOK, nil)
	waitFor(t, "healthz trace", func() bool { return len(tr.Traces()) > 0 })
	resp, err = ts2.Client().Get(ts2.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := copyAll(&b, resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"name\":\"http.healthz\"") {
		t.Fatalf("trace JSONL missing http.healthz span: %q", b.String())
	}
}
