package server

import (
	"fmt"

	"repro"
)

// GraphSpec describes a graph to build into the registry: one of the
// library generators or an edge-list file. Kind selects the family; the
// remaining fields parameterize it (unused fields are ignored).
type GraphSpec struct {
	// Kind: "rmat" | "uniform" | "grid" | "standin" | "file".
	Kind string `json:"kind"`

	// rmat: 2^Scale vertices, ~EdgeFactor·2^Scale edges.
	Scale      int `json:"scale,omitempty"`
	EdgeFactor int `json:"edge_factor,omitempty"`

	// uniform: G(n, m); Directed applies.
	N int `json:"n,omitempty"`
	M int `json:"m,omitempty"`

	// grid: Rows×Cols mesh; MaxWeight > 1 adds uniform weights in [1, MaxWeight].
	Rows      int `json:"rows,omitempty"`
	Cols      int `json:"cols,omitempty"`
	MaxWeight int `json:"max_weight,omitempty"`

	// standin: ID names a Table 2 stand-in ("orkut-sim", ...), Scale scales it.
	ID string `json:"id,omitempty"`

	// file: Path is an edge-list file readable by the server process.
	Path string `json:"path,omitempty"`

	Directed bool  `json:"directed,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	// Weights > 1 overlays uniform integer weights in [1, Weights] on the
	// generated graph (any Kind except file).
	Weights int `json:"weights,omitempty"`
}

// BuildGraph materializes the spec.
func BuildGraph(spec GraphSpec) (*repro.Graph, error) {
	var g *repro.Graph
	var err error
	switch spec.Kind {
	case "rmat":
		if spec.Scale < 1 || spec.EdgeFactor < 1 {
			return nil, fmt.Errorf("server: rmat needs scale ≥ 1 and edge_factor ≥ 1, got %d,%d", spec.Scale, spec.EdgeFactor)
		}
		g = repro.RMATGraph(spec.Scale, spec.EdgeFactor, spec.Seed)
	case "uniform":
		if spec.N < 2 || spec.M < 1 {
			return nil, fmt.Errorf("server: uniform needs n ≥ 2 and m ≥ 1, got %d,%d", spec.N, spec.M)
		}
		g = repro.UniformGraph(spec.N, spec.M, spec.Directed, spec.Seed)
	case "grid":
		if spec.Rows < 1 || spec.Cols < 1 {
			return nil, fmt.Errorf("server: grid needs rows ≥ 1 and cols ≥ 1, got %d,%d", spec.Rows, spec.Cols)
		}
		g = repro.GridGraph(spec.Rows, spec.Cols, spec.MaxWeight, spec.Seed)
	case "standin":
		g, err = repro.StandinGraph(spec.ID, spec.Scale, spec.Seed)
		if err != nil {
			return nil, err
		}
	case "file":
		if spec.Path == "" {
			return nil, fmt.Errorf("server: file kind needs a path")
		}
		g, err = repro.LoadGraph(spec.Path)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("server: unknown graph kind %q", spec.Kind)
	}
	if spec.Weights > 1 && spec.Kind != "file" {
		g.AddUniformWeights(1, spec.Weights, spec.Seed+1)
	}
	return g, nil
}
