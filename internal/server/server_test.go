package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

func testGraph(t *testing.T) *repro.Graph {
	t.Helper()
	return repro.UniformGraph(40, 160, false, 1)
}

func addGraph(t *testing.T, s *Server, name string, g *repro.Graph) GraphInfo {
	t.Helper()
	info, err := s.AddGraph(name, g)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// waitFor polls cond for up to 5s; the race detector slows everything down,
// so no assertion rides on a single sleep.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueryMatchesDirectCompute(t *testing.T) {
	g := testGraph(t)
	s := New(Config{Workers: 1})
	info := addGraph(t, s, "g", g)
	if info.Version != repro.Fingerprint(g) {
		t.Fatal("registered version must be the structural fingerprint")
	}

	res, err := s.Query(QueryRequest{Graph: "g", K: 5, IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := repro.Compute(g, repro.Options{Engine: repro.EngineMFBC, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != g.N {
		t.Fatalf("scores length %d want %d", len(res.Scores), g.N)
	}
	for v := range want.BC {
		if res.Scores[v] != want.BC[v] {
			t.Fatalf("score[%d]=%g want %g", v, res.Scores[v], want.BC[v])
		}
	}
	wantTop := repro.TopK(want.BC, 5)
	if len(res.TopK) != 5 {
		t.Fatalf("topk length %d", len(res.TopK))
	}
	for i, vs := range res.TopK {
		if vs.Vertex != wantTop[i] || vs.Score != want.BC[wantTop[i]] {
			t.Fatalf("topk[%d] = %+v want vertex %d score %g", i, vs, wantTop[i], want.BC[wantTop[i]])
		}
	}
	if res.Stats.CacheHit || res.Stats.Coalesced {
		t.Fatalf("first query can be neither cache hit nor coalesced: %+v", res.Stats)
	}
}

func TestCacheHitSecondQuery(t *testing.T) {
	s := New(Config{Workers: 1})
	addGraph(t, s, "g", testGraph(t))

	first, err := s.Query(QueryRequest{Graph: "g", Procs: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Query(QueryRequest{Graph: "g", Procs: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Fatal("identical repeat query must be a cache hit")
	}
	if second.Stats.ComputeMS != first.Stats.ComputeMS {
		t.Fatal("cache hit must report the original compute wall time")
	}
	// Presentation-only parameters share the cached scores.
	third, err := s.Query(QueryRequest{Graph: "g", Procs: 2, K: 7, IncludeScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Stats.CacheHit {
		t.Fatal("changing only k/include_scores must still hit the cache")
	}
	st := s.Stats()
	if st.Computes != 1 || st.CacheHits != 2 || st.Queries != 3 {
		t.Fatalf("stats = %+v, want 1 compute, 2 hits, 3 queries", st)
	}
	if first.Plan == "" || first.Iterations == 0 {
		t.Fatalf("distributed metadata missing: %+v", first)
	}
	if first.Stats.Comm.Bytes == 0 {
		t.Fatal("distributed query must carry a modeled comm report")
	}
}

// TestSingleFlight is the acceptance test of the tentpole: k concurrent
// identical queries perform exactly one underlying compute and every caller
// receives identical scores. Run with -race.
func TestSingleFlight(t *testing.T) {
	const callers = 12
	g := testGraph(t)
	s := New(Config{Workers: 1})
	addGraph(t, s, "g", g)

	var computes atomic.Int64
	release := make(chan struct{})
	s.computeExact = func(g *repro.Graph, opt repro.Options) (*repro.Result, error) {
		computes.Add(1)
		<-release // hold the flight open until every caller has joined it
		return repro.Compute(g, opt)
	}

	req := QueryRequest{Graph: "g", Batch: 16, IncludeScores: true}
	results := make([]*QueryResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Query(req)
		}(i)
	}
	waitFor(t, "all waiters to coalesce", func() bool {
		return s.Stats().Coalesced == callers-1
	})
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("observed %d computes, want exactly 1", n)
	}
	coalesced := 0
	for i, res := range results {
		for v := range results[0].Scores {
			if res.Scores[v] != results[0].Scores[v] {
				t.Fatalf("caller %d got different scores at vertex %d", i, v)
			}
		}
		if res.Stats.Coalesced {
			coalesced++
		} else if res.Stats.CacheHit {
			t.Fatalf("caller %d reported a cache hit during a held flight", i)
		}
	}
	if coalesced != callers-1 {
		t.Fatalf("%d callers coalesced, want %d", coalesced, callers-1)
	}
	if st := s.Stats(); st.Computes != 1 || st.InFlight != 0 {
		t.Fatalf("stats after flight: %+v", st)
	}
}

// TestDistinctQueriesDontBlock: a long compute on one graph must not
// serialize queries against another. The first compute blocks until the
// second query has fully completed; a server that held its lock across
// computes would deadlock here (bounded by the 5s guard).
func TestDistinctQueriesDontBlock(t *testing.T) {
	s := New(Config{Workers: 1})
	ga := repro.UniformGraph(30, 100, false, 2)
	gb := repro.UniformGraph(20, 60, false, 3)
	addGraph(t, s, "a", ga)
	addGraph(t, s, "b", gb)

	bFinished := make(chan struct{})
	s.computeExact = func(g *repro.Graph, opt repro.Options) (*repro.Result, error) {
		if g.N == ga.N {
			select {
			case <-bFinished:
			case <-time.After(5 * time.Second):
				return nil, errors.New("query against graph b blocked behind graph a's compute")
			}
		}
		return repro.Compute(g, opt)
	}

	aErr := make(chan error, 1)
	go func() {
		_, err := s.Query(QueryRequest{Graph: "a"})
		aErr <- err
	}()
	waitFor(t, "graph a's compute to start", func() bool { return s.Stats().InFlight == 1 })

	if _, err := s.Query(QueryRequest{Graph: "b"}); err != nil {
		t.Fatal(err)
	}
	close(bFinished)
	if err := <-aErr; err != nil {
		t.Fatal(err)
	}
}

func TestApproximateQueryKeying(t *testing.T) {
	s := New(Config{Workers: 1})
	addGraph(t, s, "g", testGraph(t))

	a1, err := s.Query(QueryRequest{Graph: "g", Samples: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Samples != 8 || a1.Stats.CacheHit {
		t.Fatalf("bad first approximate query: %+v", a1)
	}
	// Different sampling seed → different scores → distinct cache entry.
	if _, err := s.Query(QueryRequest{Graph: "g", Samples: 8, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Same budget and seed → cache hit.
	a3, err := s.Query(QueryRequest{Graph: "g", Samples: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !a3.Stats.CacheHit {
		t.Fatal("repeat approximate query must hit the cache")
	}
	// Exact queries ignore the seed: it is normalized out of the key.
	if _, err := s.Query(QueryRequest{Graph: "g", Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e2, err := s.Query(QueryRequest{Graph: "g", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !e2.Stats.CacheHit {
		t.Fatal("exact queries with different seeds must share one cache entry")
	}
	if st := s.Stats(); st.Computes != 3 {
		t.Fatalf("computes = %d, want 3 (two approx seeds + one exact)", st.Computes)
	}
	// A sample budget ≥ n degenerates to exact and must collapse onto the
	// exact cache entry regardless of seed.
	over, err := s.Query(QueryRequest{Graph: "g", Samples: 10_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Stats.CacheHit || over.Samples != 0 {
		t.Fatalf("over-budget sampling must hit the exact entry: %+v", over)
	}
	if st := s.Stats(); st.Computes != 3 {
		t.Fatalf("over-budget sampling recomputed: %+v", st)
	}
}

// TestEvictDuringFlightNoResidue: a compute finishing after its graph was
// evicted must not re-insert a cache entry for the dead graph, but its
// waiters still get the result.
func TestEvictDuringFlightNoResidue(t *testing.T) {
	s := New(Config{Workers: 1})
	addGraph(t, s, "g", testGraph(t))

	release := make(chan struct{})
	s.computeExact = func(g *repro.Graph, opt repro.Options) (*repro.Result, error) {
		<-release
		return repro.Compute(g, opt)
	}
	done := make(chan error, 1)
	var res *QueryResult
	go func() {
		var err error
		res, err = s.Query(QueryRequest{Graph: "g", K: 1})
		done <- err
	}()
	waitFor(t, "compute to start", func() bool { return s.Stats().InFlight == 1 })
	if err := s.Evict("g"); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 1 {
		t.Fatalf("in-flight query must still answer: %+v", res)
	}
	if st := s.Stats(); st.CacheEntries != 0 || st.Graphs != 0 {
		t.Fatalf("evicted graph left cache residue: %+v", st)
	}
}

func TestEvictPurgesCache(t *testing.T) {
	s := New(Config{Workers: 1})
	g := testGraph(t)
	addGraph(t, s, "g", g)
	if _, err := s.Query(QueryRequest{Graph: "g"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("g"); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("g"); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("double evict: %v", err)
	}
	if _, err := s.Query(QueryRequest{Graph: "g"}); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("query after evict: %v", err)
	}
	if st := s.Stats(); st.Graphs != 0 || st.CacheEntries != 0 {
		t.Fatalf("evict left residue: %+v", st)
	}
	// Re-registering the same topology starts cold.
	addGraph(t, s, "g", g)
	res, err := s.Query(QueryRequest{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Fatal("cache must not survive eviction")
	}
}

func TestReplaceGraphChangesVersion(t *testing.T) {
	s := New(Config{Workers: 1})
	addGraph(t, s, "g", repro.UniformGraph(30, 90, false, 4))
	v1, err := s.Query(QueryRequest{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	addGraph(t, s, "g", repro.UniformGraph(30, 90, false, 5))
	v2, err := s.Query(QueryRequest{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version == v2.Version {
		t.Fatal("different topologies must have different versions")
	}
	if v2.Stats.CacheHit {
		t.Fatal("stale cache entry served for a replaced graph")
	}
}

func TestCacheBoundLRU(t *testing.T) {
	s := New(Config{Workers: 1, CacheSize: 2})
	addGraph(t, s, "g", testGraph(t))
	for _, batch := range []int{4, 8, 16} {
		if _, err := s.Query(QueryRequest{Graph: "g", Batch: batch}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheEntries != 2 || st.Evictions != 1 {
		t.Fatalf("LRU bound not enforced: %+v", st)
	}
	// batch=4 was evicted; batch=16 is still resident.
	res, err := s.Query(QueryRequest{Graph: "g", Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Fatal("most recent entry must survive LRU eviction")
	}
	res, err = s.Query(QueryRequest{Graph: "g", Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Fatal("oldest entry must have been evicted")
	}
}

func TestComputeErrorsNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	g := repro.GridGraph(4, 4, 9, 6) // weighted: combblas rejects it
	addGraph(t, s, "g", g)
	if _, err := s.Query(QueryRequest{Graph: "g", Engine: repro.EngineCombBLAS}); err == nil {
		t.Fatal("weighted graph on combblas must fail")
	}
	if _, err := s.Query(QueryRequest{Graph: "g", Engine: repro.EngineCombBLAS}); err == nil {
		t.Fatal("errors must not be cached as successes")
	}
	if st := s.Stats(); st.Computes != 2 || st.CacheEntries != 0 {
		t.Fatalf("error caching went wrong: %+v", st)
	}
	if _, err := s.Query(QueryRequest{Graph: "g", K: -1}); err == nil {
		t.Fatal("negative k must be rejected")
	}
}

func TestAddGraphValidation(t *testing.T) {
	s := New(Config{})
	if _, err := s.AddGraph("", testGraph(t)); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := s.AddGraph("g", nil); err == nil {
		t.Fatal("nil graph must fail")
	}
	bad := &repro.Graph{N: 2, Edges: []repro.Edge{{U: 0, V: 5, W: 1}}}
	if _, err := s.AddGraph("g", bad); err == nil {
		t.Fatal("invalid graph must fail")
	}
	if _, err := s.GraphInfoFor("missing"); !errors.Is(err, ErrGraphNotFound) {
		t.Fatal("missing graph must report ErrGraphNotFound")
	}
}
