package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"

	"repro"
)

// Race choreography for the async ingestion pipeline, extending the PR 7
// race_test.go pattern: concurrent PATCH + Evict + query during in-flight
// group commits must never surface a torn (version, scores) pair and must
// never resurrect an evicted graph's queue. Run with -race.

// TestIngestEvictFailsQueuedBatches: evicting a graph fails every queued
// batch with ErrGraphNotFound, and a re-registered graph under the same
// name starts with a fresh, empty queue — never the evicted one.
func TestIngestEvictFailsQueuedBatches(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	g := repro.GridGraph(6, 6, 1, 1)
	n := int32(g.N)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}

	// Queue a round behind the held serializer, then evict before any of
	// it can commit.
	lk := s.mutLockFor("g")
	lk.Lock()
	const K = 4
	errCh := make(chan error, K)
	for i := 0; i < K; i++ {
		u := int32(i)
		go func() {
			_, err := s.MutateDurable(context.Background(), "g",
				[]repro.Mutation{{Op: repro.MutAddEdge, U: u, V: n - 1 - u, W: 1}},
				DurabilityApplied)
			errCh <- err
		}()
	}
	waitFor(t, "round queued", func() bool { return s.Stats().IngestQueueDepth == K })
	if err := s.Evict("g"); err != nil {
		t.Fatal(err)
	}
	lk.Unlock()

	for i := 0; i < K; i++ {
		if err := <-errCh; !errors.Is(err, ErrGraphNotFound) {
			t.Fatalf("queued batch after evict: %v, want ErrGraphNotFound", err)
		}
	}
	st := s.Stats()
	if st.IngestQueueDepth != 0 {
		t.Fatalf("IngestQueueDepth = %d after evict, want 0", st.IngestQueueDepth)
	}
	if st.IngestBatchErrors != K {
		t.Fatalf("IngestBatchErrors = %d, want %d", st.IngestBatchErrors, K)
	}
	if st.Mutations != 0 {
		t.Fatalf("Mutations = %d, want 0 (nothing committed)", st.Mutations)
	}

	// Re-register: the name gets a fresh queue; the old backlog stays dead
	// and a new batch commits normally.
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := s.MutateDurable(context.Background(), "g",
		[]repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: n - 1, W: 1}}, DurabilityApplied)
	if err != nil {
		t.Fatalf("mutate after re-register: %v", err)
	}
	if res.CoalescedBatches != 1 {
		t.Fatalf("CoalescedBatches = %d, want 1 (no resurrected backlog)", res.CoalescedBatches)
	}
	info, _ := s.GraphInfoFor("g")
	if info.M != g.M()+1 {
		t.Fatalf("m = %d, want %d: exactly the post-re-register batch, none of the evicted ones", info.M, g.M()+1)
	}
}

// stallEngine wraps the real dynamic engine and parks inside ApplyCtx
// until released, holding a group commit in flight on demand.
type stallEngine struct {
	DynEngine
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (e *stallEngine) ApplyCtx(ctx context.Context, batch []repro.Mutation) (repro.ApplyReport, error) {
	e.once.Do(func() { close(e.entered) })
	<-e.release
	return e.DynEngine.ApplyCtx(ctx, batch)
}

// TestIngestEvictDuringCommit: a graph evicted while its group commit is
// inside the engine must fail that commit's waiters with ErrGraphConflict
// (the install-race check), not install onto the re-registered graph.
func TestIngestEvictDuringCommit(t *testing.T) {
	eng := &stallEngine{entered: make(chan struct{}), release: make(chan struct{})}
	s := New(Config{
		Workers: 1, IngestQueue: true,
		NewDynamic: func(_ string, g *repro.Graph, opt repro.DynamicOptions) (DynEngine, error) {
			inner, err := repro.NewDynamicBC(g, opt)
			if err != nil {
				return nil, err
			}
			eng.DynEngine = inner
			return eng, nil
		},
	})
	g := repro.GridGraph(5, 5, 1, 1)
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := s.MutateDurable(context.Background(), "g",
			[]repro.Mutation{{Op: repro.MutAddEdge, U: 0, V: 24, W: 1}}, DurabilityApplied)
		errCh <- err
	}()
	<-eng.entered // the group commit is now inside the engine

	if err := s.Evict("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGraph("g", g.Clone()); err != nil {
		t.Fatal(err)
	}
	close(eng.release)

	if err := <-errCh; !errors.Is(err, ErrGraphConflict) {
		t.Fatalf("commit raced by evict: %v, want ErrGraphConflict", err)
	}
	// The re-registered graph is untouched by the orphaned commit.
	info, _ := s.GraphInfoFor("g")
	if info.M != g.M() {
		t.Fatalf("m = %d, want %d (orphaned commit must not install)", info.M, g.M())
	}
	if s.Stats().IngestBatchErrors != 1 {
		t.Fatalf("IngestBatchErrors = %d, want 1", s.Stats().IngestBatchErrors)
	}
}

func hashScores(scores []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, x := range scores {
		bits := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// TestIngestNoTornSnapshots: readers concurrent with group commits must
// observe a consistent (version, scores) pair — one scores vector per
// version, never a mix of old and new.
func TestIngestNoTornSnapshots(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true})
	g := repro.GridGraph(8, 8, 3, 7)
	if _, err := s.AddGraph("g", g); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[uint64]uint64) // version → scores hash
	record := func(version uint64, scores []float64) {
		h := hashScores(scores)
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[version]; ok && prev != h {
			panic(fmt.Sprintf("torn snapshot: version %d served two different score vectors", version))
		}
		seen[version] = h
	}

	var wg sync.WaitGroup
	const writers, readers, iters = 3, 4, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e := g.Edges[(w*iters+i)%len(g.Edges)]
				_, err := s.MutateDurable(context.Background(), "g",
					[]repro.Mutation{{Op: repro.MutSetWeight, U: e.U, V: e.V, W: float64(1 + (w+i)%7)}},
					DurabilityApplied)
				if err != nil {
					panic(fmt.Sprintf("writer: %v", err))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters*2; i++ {
				res, err := s.Query(QueryRequest{Graph: "g", IncludeScores: true})
				if err != nil {
					panic(fmt.Sprintf("reader: %v", err))
				}
				record(res.Version, res.Scores)
			}
		}()
	}
	wg.Wait()
}

// TestIngestEvictRegisterStorm is the PR 7 chaos storm with the ingest
// queue enabled: concurrent queued PATCHes, evictions, re-registrations,
// and reads. Every outcome must be a sane one; the value is the -race
// detector plus the queue-teardown invariants under churn.
func TestIngestEvictRegisterStorm(t *testing.T) {
	s := New(Config{Workers: 1, IngestQueue: true, IngestMaxDepth: 8})
	mk := func(seed int64) *repro.Graph { return repro.GridGraph(6, 6, 3, seed) }
	if _, err := s.AddGraph("g", mk(1)); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0: // queued mutate: reweight a known grid edge
					u := int32((w*iters + i) % 35)
					durability := DurabilityApplied
					if i%3 == 0 {
						durability = DurabilityEnqueued
					}
					_, err := s.MutateDurable(context.Background(), "g", []repro.Mutation{
						{Op: repro.MutSetWeight, U: u, V: u + 1, W: float64(1 + i%5)},
					}, durability)
					switch {
					case err == nil:
					case errors.Is(err, ErrGraphNotFound), errors.Is(err, ErrGraphConflict),
						errors.Is(err, ErrIngestBackpressure):
					case u%6 == 5:
						// (u, u+1) spans a grid row boundary: a legitimate
						// no-such-edge validation error.
					default:
						panic(fmt.Sprintf("mutate: %v", err))
					}
				case 1: // evict (closes + fails the queue)
					if err := s.Evict("g"); err != nil && !errors.Is(err, ErrGraphNotFound) {
						panic(fmt.Sprintf("evict: %v", err))
					}
				case 2: // re-register (fresh queue)
					if _, err := s.AddGraph("g", mk(int64(i))); err != nil {
						panic(fmt.Sprintf("add: %v", err))
					}
				case 3: // read traffic
					_, err := s.Query(QueryRequest{Graph: "g", K: 3})
					if err != nil && !errors.Is(err, ErrGraphNotFound) {
						panic(fmt.Sprintf("query: %v", err))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesce: drainers for live queues finish their backlogs.
	waitFor(t, "queues drained", func() bool { return s.Stats().IngestQueueDepth == 0 })
}
