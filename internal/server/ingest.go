// Async mutation ingestion: per-graph write-ahead queues with coalescing
// group-commit applies.
//
// With Config.IngestQueue set, a PATCH batch lands in the graph's queue
// instead of applying synchronously. The Enqueue that finds no drainer
// active elects one (a short-lived goroutine); the drainer takes the
// per-graph mutation serializer FIRST and only then drains, so every
// batch that arrives while a commit (or a sync-path Mutate) holds the
// lock piles up and rides the next group. One group commit validates each
// batch in arrival order, coalesces the valid ones via the
// MutationLog.Compact algebra into one merged batch, and runs that
// through the existing fused distributed apply — N queued writers pay
// ~one probe + one machine region instead of N.
//
// Readers never see the queue: queries serve the last committed
// (version, scores) snapshot, exactly as with synchronous mutation.
package server

import (
	"context"
	"fmt"
	"time"

	"repro"
	"repro/internal/dynamic"
	"repro/internal/obs"
)

// Durability levels for queued mutations (MutateRequest.Durability,
// Config.IngestDurability).
const (
	// DurabilityApplied acknowledges after the batch's group commit
	// lands: the caller observes the committed version, like the sync
	// path. The default.
	DurabilityApplied = "applied"
	// DurabilityEnqueued acknowledges as soon as the batch is queued:
	// the result carries Queued=true, the current queue depth, and the
	// pre-commit version. Lowest latency, no apply guarantee on return.
	DurabilityEnqueued = "enqueued"
)

const defaultIngestMaxDepth = 256

type (
	ingestQueue   = dynamic.Queue[*MutateResult]
	ingestPending = dynamic.Pending[*MutateResult]
)

// MutateDurable is MutateCtx with an explicit acknowledgment level
// (empty = the server default). Without an ingest queue it behaves
// exactly like the synchronous path regardless of durability.
func (s *Server) MutateDurable(ctx context.Context, name string, muts []repro.Mutation, durability string) (*MutateResult, error) {
	if len(muts) == 0 {
		return nil, fmt.Errorf("server: empty mutation batch")
	}
	switch durability {
	case "":
		durability = s.ingestDurable
	case DurabilityApplied, DurabilityEnqueued:
	default:
		return nil, fmt.Errorf("server: unknown durability %q (want %q or %q)",
			durability, DurabilityApplied, DurabilityEnqueued)
	}
	if !s.ingest {
		return s.mutateSync(ctx, name, muts)
	}
	return s.mutateQueued(ctx, name, muts, durability)
}

// mutateQueued admits one batch into the graph's write-ahead queue and
// acknowledges it at the requested durability.
func (s *Server) mutateQueued(ctx context.Context, name string, muts []repro.Mutation, durability string) (*MutateResult, error) {
	_, span := obs.StartSpan(ctx, "ingest.enqueue")
	defer span.End()
	span.SetAttr("graph", name).SetAttr("mutations", len(muts)).SetAttr("durability", durability)

	s.mu.Lock()
	ge, ok := s.graphs[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	q, ok := s.queues[name]
	if !ok {
		q = dynamic.NewQueue[*MutateResult](s.ingestMaxDepth)
		s.queues[name] = q
	}
	s.mu.Unlock()

	p, depth, startDrain, err := q.Enqueue(muts, time.Now())
	switch err {
	case nil:
	case dynamic.ErrQueueFull:
		s.m.ingestRejected.Inc()
		span.SetAttr("rejected", true)
		return nil, fmt.Errorf("%w: %q at depth %d", ErrIngestBackpressure, name, depth)
	case dynamic.ErrQueueClosed:
		// Evicted between the registry lookup and the enqueue; same
		// outcome as losing the lookup race outright.
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	default:
		return nil, err
	}
	s.m.ingestEnqueued.Inc()
	s.m.ingestDepth.Add(1)
	span.SetAttr("depth", depth)
	if startDrain {
		go s.drainLoop(name, q)
	}

	if durability == DurabilityEnqueued {
		return &MutateResult{
			Graph:      name,
			OldVersion: ge.version,
			Version:    ge.version, // pre-commit: the batch has not applied yet
			Queued:     true,
			QueueDepth: depth,
			N:          ge.g.N,
			M:          ge.g.M(),
		}, nil
	}
	return p.Wait(ctx) // ctx cancellation abandons the wait; the batch still commits
}

// drainLoop is the graph's elected drainer: repeatedly take the per-graph
// mutation serializer, drain whatever accumulated while waiting for it,
// and group-commit the backlog. Exits (releasing drain duty) when a drain
// finds the queue empty or closed; the next Enqueue elects a fresh
// drainer. Taking the serializer before draining is what makes groups
// form: every batch that arrives during a commit joins the next group.
func (s *Server) drainLoop(name string, q *ingestQueue) {
	for {
		lk := s.mutLockFor(name)
		lk.Lock()
		group, ok := q.Drain()
		if !ok {
			lk.Unlock()
			return
		}
		s.m.ingestDepth.Add(-float64(len(group)))
		s.commitGroup(name, group)
		lk.Unlock()
	}
}

// commitGroup applies one drained backlog as a single group commit. The
// caller holds the per-graph mutation serializer. Every pending batch is
// resolved exactly once: invalid batches individually (sequential-apply
// error semantics — one bad batch never poisons the group), valid ones
// with a copy of the shared commit result annotated per-batch.
func (s *Server) commitGroup(name string, group []*ingestPending) {
	ctx, span := s.tracer.Start(context.Background(), "ingest.commit")
	defer span.End()
	span.SetAttr("graph", name).SetAttr("batches", len(group))
	commitStart := time.Now()

	s.mu.Lock()
	ge, ok := s.graphs[name]
	s.mu.Unlock()
	if !ok {
		// Evicted after these batches were drained (the depth gauge
		// already dropped them): fail them like Close-stranded orphans.
		for _, p := range group {
			s.m.ingestBatchErrors.Inc()
			p.Resolve(nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name))
		}
		return
	}

	// Validate each batch in arrival order against a shadow graph that
	// accumulates the batches admitted so far, preserving one-at-a-time
	// apply semantics: a batch that would have been rejected sequentially
	// (double add, missing remove) is rejected here with its own error,
	// and later batches validate against the state it would have left.
	shadow := ge.g.Clone()
	valid := group[:0]
	var raw int
	for _, p := range group {
		next := shadow.Clone()
		if _, err := next.ApplyAll(p.Muts); err != nil {
			s.m.ingestBatchErrors.Inc()
			p.Resolve(nil, err)
			continue
		}
		shadow = next
		valid = append(valid, p)
		raw += len(p.Muts)
	}
	if len(valid) == 0 {
		return
	}

	merged := make([]repro.Mutation, 0, raw)
	for _, p := range valid {
		merged = append(merged, p.Muts...)
	}
	coalesced := repro.CoalesceMutations(ge.g.Directed, merged)
	s.m.ingestCoalesced.Add(float64(len(valid)))
	s.m.ingestCommits.Inc()
	s.m.ingestGroupSize.Observe(float64(len(valid)))
	span.SetAttr("raw_ops", raw).SetAttr("coalesced_ops", len(coalesced))

	var res *MutateResult
	var err error
	if len(coalesced) == 0 {
		// The group cancelled itself out (adds matched by removes, sets
		// restoring prior weights may still remain — only a truly empty
		// compaction lands here). Nothing to apply; the committed state
		// already equals the group's outcome.
		res = &MutateResult{
			Graph: name, OldVersion: ge.version, Version: ge.version,
			Strategy: "noop", N: ge.g.N, M: ge.g.M(),
		}
	} else {
		res, err = s.applyCommitted(ctx, name, ge, coalesced, commitStart)
	}
	if err != nil {
		// Engine or install failure (ErrGraphConflict on eviction races)
		// fails the whole group: none of its batches took effect.
		for _, p := range valid {
			s.m.ingestBatchErrors.Inc()
			p.Resolve(nil, err)
		}
		return
	}
	for _, p := range valid {
		wait := commitStart.Sub(p.EnqueuedAt)
		s.m.ingestQueueWait.Observe(wait.Seconds())
		r := *res
		r.CoalescedBatches = len(valid)
		r.QueueWaitMS = float64(wait.Microseconds()) / 1e3
		p.Resolve(&r, nil)
	}
}

// failOrphans resolves batches stranded by an eviction with
// ErrGraphNotFound, keeping the depth gauge and error counter honest.
func (s *Server) failOrphans(name string, orphans []*ingestPending) {
	if len(orphans) == 0 {
		return
	}
	s.m.ingestDepth.Add(-float64(len(orphans)))
	for _, p := range orphans {
		s.m.ingestBatchErrors.Inc()
		p.Resolve(nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name))
	}
}
