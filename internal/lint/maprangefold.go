package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// MapRangeFold flags `for … range` over a map whose body does
// order-sensitive work: accumulating into a float declared outside the
// loop (float addition is not associative, so fold order changes bits),
// appending to a slice declared outside the loop (output order follows map
// iteration order, which Go randomizes), or issuing machine-model calls
// (collective sequences must be identical across ranks and runs). The
// sanctioned idiom is to collect the keys, sort them, and iterate the
// sorted keys; accordingly, an append that collects map keys into a slice
// that is visibly sorted later in the same function is not flagged. Float
// folds and machine calls have no such escape — rewrite them over sorted
// keys, or annotate //lint:allow maprangefold <reason>.
var MapRangeFold = &analysis.Analyzer{
	Name: "maprangefold",
	Doc: "flags map-range loops that fold floats, append to outer slices, " +
		"or issue machine-model calls in map iteration order",
	Run: runMapRangeFold,
}

func runMapRangeFold(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node // all open nodes, to find the enclosing function
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// open-node stack, or nil at file scope.
func enclosingFuncBody(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch d := stack[i].(type) {
		case *ast.FuncDecl:
			return d.Body
		case *ast.FuncLit:
			return d.Body
		}
	}
	return nil
}

// sortedAfter reports whether a recognized sort call on expression want
// (by source rendering) appears after pos within the enclosing function
// body — the second half of the collect-keys/sort/iterate idiom, which
// legitimizes an append-in-map-range collection loop.
func sortedAfter(info *types.Info, encl ast.Node, pos token.Pos, want string) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		name := fn.Name()
		isSort := (pkg == "sort" || pkg == "slices") &&
			(strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice") ||
				name == "Strings" || name == "Ints" || name == "Float64s")
		if !isSort {
			return true
		}
		if types.ExprString(ast.Unparen(call.Args[0])) == want {
			found = true
		}
		return !found
	})
	return found
}

func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, encl ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := st.Lhs[0]
				if typeHasFloat(info.TypeOf(lhs)) {
					if id := rootIdent(lhs); id != nil && declaredOutside(info, id, rng) {
						pass.Reportf(st.Pos(),
							"floating-point accumulation into %s inside range over map: fold order follows map iteration order and changes result bits; iterate sorted keys",
							types.ExprString(lhs))
					}
				}
			case token.ASSIGN, token.DEFINE:
				checkFoldAndAppend(pass, rng, encl, st)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, st); fn != nil && fn.Pkg() != nil && isMachinePackage(fn.Pkg().Path()) {
				pass.Reportf(st.Pos(),
					"machine-model call %s inside range over map: collective order would follow map iteration order and desynchronize ranks; iterate sorted keys",
					fn.Name())
			}
		}
		return true
	})
}

// checkFoldAndAppend handles plain assignments in a map-range body:
// x = x + e float folds, and v = append(v, …) into an outer slice.
func checkFoldAndAppend(pass *analysis.Pass, rng *ast.RangeStmt, encl ast.Node, st *ast.AssignStmt) {
	info := pass.TypesInfo
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		rhs := ast.Unparen(st.Rhs[i])
		id := rootIdent(lhs)
		if id == nil || !declaredOutside(info, id, rng) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			// Collecting keys and sorting afterwards is the sanctioned
			// idiom's first half; a sort on the collected slice after the
			// loop legitimizes the append.
			if sortedAfter(info, encl, rng.End(), types.ExprString(lhs)) {
				continue
			}
			pass.Reportf(st.Pos(),
				"append into %s inside range over map and never sorted after: output order follows map iteration order; sort the collected slice or iterate sorted keys",
				types.ExprString(lhs))
			continue
		}
		// x = x ⊕ e and x = f(x, …) float folds.
		if typeHasFloat(info.TypeOf(lhs)) && mentionsExpr(rhs, types.ExprString(lhs)) {
			pass.Reportf(st.Pos(),
				"floating-point fold of %s inside range over map: fold order follows map iteration order and changes result bits; iterate sorted keys",
				types.ExprString(lhs))
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsExpr reports whether some subexpression of e renders to want.
func mentionsExpr(e ast.Expr, want string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sub, ok := n.(ast.Expr); ok && types.ExprString(sub) == want {
			found = true
			return false
		}
		return true
	})
	return found
}
