// Fixtures for the phasenames analyzer: Proc.Phase arguments are checked
// against the real registry in repro/internal/machine, while the Proc
// receiver comes from the fixture machine package (matched by basename).
package phasenames

import "machine"

const sweep = "sweep"

func canonical(p *machine.Proc) {
	p.Phase("sweep")
	p.Phase(sweep) // named constant with a canonical value: clean
	p.Phase("patch")
}

func offRegistry(p *machine.Proc) {
	p.Phase("Sweep") // want `not in the canonical phase registry`
}

func dynamic(p *machine.Proc, name string) {
	p.Phase(name) // want `must be a string constant`
}

func computed(p *machine.Proc, i int) {
	p.Phase("sweep" + string(rune('0'+i))) // want `must be a string constant`
}

func allowed(p *machine.Proc) {
	p.Phase("warmup") //lint:allow phasenames fixture demonstrates an annotated exemption
}

func notTheMachinePhase(s interface{ Phase(int) }) {
	s.Phase(3) // different Phase method, not the machine package: clean
}
