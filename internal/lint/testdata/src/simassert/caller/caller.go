// Package caller exercises the simassert analyzer: it holds transports
// through an interface and tries to peek behind it at the sim backend.
package caller

import "simassert/sim"

// Transport mimics the machine.Transport interface surface.
type Transport interface{ Size() int }

func peek(tr Transport) int {
	if m, ok := tr.(*sim.Machine); ok { // want `type assertion on sim-backend type sim\.Machine`
		return m.Rank()
	}
	return tr.Size()
}

func switchPeek(v any) int {
	switch m := v.(type) {
	case *sim.Machine: // want `type assertion on sim-backend type sim\.Machine`
		return m.Rank()
	case interface{ Ranks() []int }, sim.Probe: // want `type assertion on sim-backend type sim\.Probe`
		_ = m
	}
	return 0
}

// capabilityProbe narrows by method set, not by backend type: legal.
func capabilityProbe(tr Transport) bool {
	_, ok := tr.(interface{ Rank() int })
	return ok
}

// doublePointer makes sure the pointer chain is followed all the way down.
func doublePointer(v any) bool {
	_, ok := v.(**sim.Machine) // want `type assertion on sim-backend type sim\.Machine`
	return ok
}

func allowedPeek(tr Transport) int {
	//lint:allow simassert fixture-sanctioned downcast for a sim-only diagnostic
	if m, ok := tr.(*sim.Machine); ok {
		return m.Rank()
	}
	return 0
}
