// Package sim is a fixture stand-in for the simulated machine backend:
// the simassert analyzer matches it by package basename, so fixtures can
// exercise sim-type assertions without importing the real module.
package sim

// Machine mimics the simulated backend's concrete transport type.
type Machine struct{ p int }

// Size mimics the Transport method set.
func (m *Machine) Size() int { return m.p }

// Rank mimics a sim-only accessor that tempts callers to downcast.
func (m *Machine) Rank() int { return 0 }

// Probe mimics a sim-only value type (non-pointer assertions).
type Probe struct{ Ticks int64 }
