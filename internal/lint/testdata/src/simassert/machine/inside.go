// Package machine mimics the real machine package: inside the machine
// tree, naming sim backend types is the whole point (the backends live
// there), so the simassert analyzer must stay silent.
package machine

import "simassert/sim"

// SimRank is a machine-tree helper that legitimately downcasts.
func SimRank(v interface{ Size() int }) int {
	if m, ok := v.(*sim.Machine); ok {
		return m.Rank()
	}
	return -1
}
