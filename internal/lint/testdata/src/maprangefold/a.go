// Fixtures for the maprangefold analyzer: order-sensitive work inside
// range-over-map bodies.
package maprangefold

import (
	"sort"

	"machine"
)

func floatFoldCompound(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum
}

func floatFoldPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point fold of total`
	}
	return total
}

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append into out inside range over map and never sorted`
	}
	return out
}

func appendSortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // collect-and-sort idiom: clean
	}
	sort.Strings(out)
	return out
}

func machineCalls(m map[string]int, p *machine.Proc) {
	for range m {
		machine.Barrier() // want `machine-model call Barrier`
	}
	for _, v := range m {
		p.Send(v, 1) // want `machine-model call Send`
	}
}

func sortedKeysIdiom(m map[string]float64, p *machine.Proc) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
		p.Send(0, 1)
	}
	return sum
}

func allowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow maprangefold fixture demonstrates an annotated exemption
	}
	return sum
}

func intFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is exact in any order: clean
	}
	return n
}

func loopLocal(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // fold into a loop-local: clean
		}
		_ = s
	}
	return out
}
