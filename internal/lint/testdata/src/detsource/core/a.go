// Fixtures for the detsource analyzer. The directory basename "core" puts
// this package in the model/kernel determinism scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a model/kernel package`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

func seededRand() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10) // methods on an explicitly seeded local source: clean
}

func selectByBreak(m map[string]int) string {
	var pick string
	for k := range m {
		pick = k // want `assignment of map-range variable into pick`
		break    // want `break inside range over map`
	}
	return pick
}

func selectByReturn(m map[string]int) int {
	for _, v := range m {
		return v // want `return inside range over map`
	}
	return 0
}

func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // accumulation, not selection: clean
	}
	sort.Strings(keys)
	return keys
}

func nestedBreak(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break // unlabeled break of the inner loop only: clean
			}
			total += v
		}
	}
	return total
}

func orderInsensitiveWrites(m map[int]int, hist []int) {
	for k, v := range m {
		hist[k] = v // keyed store, no selection among elements: clean
	}
}

func allowed(m map[string]int) int {
	for _, v := range m {
		//lint:allow detsource any element serves equally as the probe seed here
		return v
	}
	return 0
}
