// Fixture for the phasenames analyzer's obs phase-label-table check: the
// package basename "obs" triggers coverage checking of the phaseLabels
// map against the real canonical registry in repro/internal/machine.
package obs

// phaseLabels here misses the "reduce" phase of the real registry.
var phaseLabels = map[string]string{ // want `missing machine phase "reduce"`
	"stage": "stage",
	"diff":  "diff",
	"patch": "patch",
	"probe": "probe",
	"sweep": "sweep",
}

// otherTable is not the label table; never checked.
var otherTable = map[string]string{"x": "y"}
