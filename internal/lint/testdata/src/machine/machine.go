// Package machine is a fixture stand-in for the repository's
// machine-model package: the analyzers match it by package basename, so
// fixtures can exercise machine-call and Proc.Phase checks without
// importing the real module.
package machine

// Proc mimics the machine-model rank handle.
type Proc struct{}

// Phase mimics per-phase cost attribution.
func (p *Proc) Phase(name string) {}

// Send mimics a machine-model point-to-point call.
func (p *Proc) Send(rank int, bytes int64) {}

// Barrier mimics a package-level machine-model collective.
func Barrier() {}
