// Fixtures for the lockscope analyzer: locks held at exit, mutex value
// copies, and guarded-field access.
package lockscope

import (
	"os"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func returnWhileHeld(c *counter) int {
	c.mu.Lock()
	return c.n // want `return with c.mu still held`
}

func balanced(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func deferredClosure(c *counter) int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

func branchLeak(c *counter, b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return 0
	}
	return c.n // want `return with c.mu still held`
}

func panicWhileHeld(c *counter) {
	c.mu.Lock()
	if c.n < 0 {
		panic("negative") // want `panic with c.mu still held`
	}
	c.mu.Unlock()
}

func fallOffEndWhileHeld(c *counter) {
	c.mu.Lock()
	c.n++
} // want `function exit with c.mu still held`

func exitProcess(c *counter) {
	c.mu.Lock()
	if c.n > 10 {
		os.Exit(1) // process ends; held locks are moot: clean
	}
	c.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

func readBalanced(t *table, k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	return v
}

func readLeak(t *table, k string) int {
	t.mu.RLock()
	return t.m[k] // want `return with t.mu still held`
}

type holder struct{ mu sync.Mutex }

func sink(h holder)      {}
func sinkPtr(h *holder)  {}
func twoLocks(a, b bool) {}

func copies(h holder) {
	g := h  // want `copies a value containing sync.Mutex`
	sink(g) // want `copies a value containing sync.Mutex`
	hs := make([]holder, 1)
	for _, x := range hs { // want `copies a value containing sync.Mutex`
		sinkPtr(&x)
	}
}

func pointersAreFine(h *holder) *holder {
	g := h
	sinkPtr(g)
	return g
}

type store struct {
	mu   sync.Mutex
	data map[string]int // guarded by mu
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[k]
}

// getLocked returns the value for k. Caller holds s.mu.
func (s *store) getLocked(k string) int {
	return s.data[k]
}

func (s *store) unguarded(k string) int {
	return s.data[k] // want `store.data is annotated`
}

func allowedHandoff(c *counter) {
	c.mu.Lock()
	//lint:allow lockscope fixture demonstrates an annotated lock handoff
	return
}
