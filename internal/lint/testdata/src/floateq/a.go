// Fixtures for the floateq analyzer: exact float comparisons outside the
// registered-exempt IsZero forms.
package floateq

type path struct {
	W float64
	M int
}

func cmpEq(a, b float64) bool {
	return a == b // want `float == compares exact bits`
}

func cmpNeq(a, b float64) bool {
	return a != b // want `float != compares exact bits`
}

func cmpStruct(a, b path) bool {
	return a == b // want `float == compares exact bits`
}

func cmpMixed(a float64, b int) bool {
	return a == float64(b) // want `float == compares exact bits`
}

func cmpInt(a, b int) bool {
	return a == b // integer equality is exact: clean
}

func cmpConst() bool {
	const x = 1.5
	const y = 2.5
	return x == y // constant-folded: clean
}

// WeightIsZero is registered-exempt by name: identity-element tests are
// bit-equality by contract.
func WeightIsZero(x float64) bool {
	return x == 0
}

type monoid struct {
	IsZero func(path) bool
}

func newMonoid() monoid {
	return monoid{
		IsZero: func(x path) bool { return x.W == 0 && x.M == 0 }, // exempt closure: clean
	}
}

func allowed(a, b float64) bool {
	return a == b //lint:allow floateq fixture demonstrates an annotated exemption
}

func missingReason(a, b float64) bool {
	//lint:allow floateq
	return a == b // want `float == compares exact bits`
}
