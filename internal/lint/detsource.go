package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// DetSource flags nondeterminism sources inside the model/kernel packages
// (internal/{core,spgemm,sparse,distmat,algebra,machine} and the
// simulated backend machine/sim), where any
// run-to-run variation invalidates differential replay: wall-clock reads
// (time.Now), the globally seeded math/rand source, and map-range loops
// whose iteration order selects the result (a break, a return, or an
// assignment of the range variables to loop-external state).
var DetSource = &analysis.Analyzer{
	Name: "detsource",
	Doc: "flags time.Now, global math/rand, and map-order-dependent " +
		"selection in model/kernel packages",
	Run: runDetSource,
}

// detScopePackages are the package basenames whose determinism feeds the
// differential harness.
var detScopePackages = map[string]bool{
	"core": true, "spgemm": true, "sparse": true,
	"distmat": true, "algebra": true, "machine": true,
	// The simulated backend replays collectives deterministically, so it
	// sits in scope; tcpnet deliberately does not — wall-clock I/O is its
	// entire purpose.
	"sim": true,
}

// randConstructors are the package-level math/rand functions that build
// explicitly seeded local generators and are therefore deterministic.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetSource(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !detScopePackages[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, node)
			case *ast.RangeStmt:
				t := pass.TypesInfo.TypeOf(node.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapSelection(pass, node)
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkDetCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Report(call.Pos(),
				"time.Now in a model/kernel package: wall-clock reads vary run to run and invalidate differential replay; thread timestamps in from the caller")
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil { // methods on an explicit *rand.Rand are fine
			return
		}
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"global math/rand.%s in a model/kernel package uses a process-global source; use rand.New(rand.NewSource(seed)) with an explicit seed", fn.Name())
		}
	}
}

// checkMapSelection flags map-range bodies whose control flow or writes
// let the (randomized) iteration order pick the result.
func checkMapSelection(pass *analysis.Pass, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	rangeVars := make(map[types.Object]bool)
	keyVars := make(map[types.Object]bool)
	for i, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				rangeVars[obj] = true
				if i == 0 {
					keyVars[obj] = true
				}
			}
		}
	}
	mentionsKeyVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && keyVars[info.ObjectOf(id)] {
				found = true
				return false
			}
			return !found
		})
		return found
	}
	mentionsRangeVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && rangeVars[info.ObjectOf(id)] {
				found = true
				return false
			}
			return !found
		})
		return found
	}

	// walk visits the loop body; inNested is true once we are inside a
	// nested loop/switch/select, where an unlabeled break no longer
	// terminates the map range.
	var walk func(n ast.Node, inNested bool)
	walk = func(n ast.Node, inNested bool) {
		if n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return // deferred execution; not this loop's control flow
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			inNested = true
		case *ast.BranchStmt:
			if st.Tok == token.BREAK && st.Label == nil && !inNested {
				pass.Report(st.Pos(),
					"break inside range over map selects the first element in (randomized) map iteration order; iterate sorted keys")
			}
			return
		case *ast.ReturnStmt:
			pass.Report(st.Pos(),
				"return inside range over map selects a result in (randomized) map iteration order; iterate sorted keys")
			return
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id := rootIdent(lhs)
				if id == nil || !declaredOutside(info, id, rng) {
					continue
				}
				// A store keyed by the map key (hist[k] = v) writes a
				// distinct slot per iteration — order-insensitive, since
				// map keys are unique.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && mentionsKeyVar(ix.Index) {
					continue
				}
				// x = append(x, …) is accumulation, not selection; order
				// sensitivity of accumulation is maprangefold's domain.
				// Selection keeps one element (a scalar overwrite).
				if i < len(st.Rhs) {
					if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
						continue
					}
				}
				for _, rhs := range st.Rhs {
					if mentionsRangeVar(rhs) {
						pass.Reportf(st.Pos(),
							"assignment of map-range variable into %s makes the kept element depend on (randomized) map iteration order; iterate sorted keys", types.ExprString(lhs))
						return
					}
				}
			}
		}
		nested := inNested
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, nested)
			return false
		})
	}
	for _, st := range rng.Body.List {
		walk(st, false)
	}
}
