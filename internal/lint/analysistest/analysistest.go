// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	x := 1.0
//	if x == y { // want `float64 equality`
//
// A line may carry several quoted regexps; every diagnostic on a line must
// match one expectation on that line and every expectation must be
// matched. Lines suppressed by //lint:allow must therefore carry no want.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run analyzes each fixture package under dir/src and reports mismatches
// as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	ldr, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	ldr.FixtureRoot = dir + "/src"
	for _, path := range pkgs {
		pkg, err := ldr.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		for _, e := range pkg.Errs {
			t.Errorf("fixture %s does not type-check: %v", path, e)
		}
		if len(pkg.Errs) > 0 {
			continue
		}
		diags, err := analysis.Run(ldr.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, ldr.Fset, path, pkg, diags)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// check matches diagnostics against the fixture's want comments.
func check(t *testing.T, fset *token.FileSet, path string, pkg *loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				res, err := parseWants(c.Text)
				if err != nil {
					t.Errorf("%s: %v", pos, err)
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], res...)
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic in %s: [%s] %s", pos, path, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

// parseWants extracts the quoted regexps of a // want comment.
func parseWants(text string) ([]*want, error) {
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, nil
	}
	var out []*want
	for {
		body = strings.TrimSpace(body)
		if body == "" {
			break
		}
		var raw string
		switch body[0] {
		case '"':
			end := -1
			for i := 1; i < len(body); i++ {
				if body[i] == '\\' {
					i++
					continue
				}
				if body[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", body)
			}
			var err error
			raw, err = strconv.Unquote(body[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", body[:end+1], err)
			}
			body = body[end+1:]
		case '`':
			end := strings.IndexByte(body[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", body)
			}
			raw = body[1 : end+1]
			body = body[end+2:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted: %q", body)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", raw, err)
		}
		out = append(out, &want{re: re})
	}
	return out, nil
}
