package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// LockScope enforces the repo's lock discipline with three sub-checks:
//
//  1. held-at-exit: a function must not return, panic, or fall off its
//     end on a path where a sync.Mutex/RWMutex it acquired is still held
//     and no defer releases it (the streaming layer unwinds through
//     panics across goroutines, so a leaked lock deadlocks the machine);
//  2. value copies of mutexes (or structs containing them), which fork
//     the lock state;
//  3. fields annotated `// guarded by <mu>` must only be touched by
//     functions that lock <mu> or are documented `// caller holds <mu>`.
var LockScope = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "flags paths holding a mutex at return/panic without defer, " +
		"mutex value copies, and guarded-field access without the guard",
	Run: runLockScope,
}

func runLockScope(pass *analysis.Pass) error {
	checkCopyLocks(pass)
	checkHeldAtExit(pass)
	checkGuardedFields(pass)
	return nil
}

// ---- sub-check 1: mutex value copies -------------------------------------

func checkCopyLocks(pass *analysis.Pass) {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies a value containing %s: the copy's lock state forks from the original; use a pointer", what, t)
	}
	copiedLockType := func(e ast.Expr) types.Type {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			t := info.TypeOf(e)
			if lockType(t) != nil {
				return lockType(t)
			}
		}
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if t := copiedLockType(rhs); t != nil {
						report(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					if t := copiedLockType(arg); t != nil {
						report(arg.Pos(), "call argument", t)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if t := copiedLockType(res); t != nil {
						report(res.Pos(), "return", t)
					}
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if t := lockType(info.TypeOf(st.Value)); t != nil {
						report(st.Value.Pos(), "range value", t)
					}
				}
			}
			return true
		})
	}
}

// lockType returns the sync lock type a value of type t contains (itself,
// or nested through structs/arrays), or nil.
func lockType(t types.Type) types.Type {
	return lockTypeRec(t, make(map[types.Type]bool))
}

func lockTypeRec(t types.Type, seen map[types.Type]bool) types.Type {
	if t == nil || seen[t] {
		return nil
	}
	seen[t] = true
	if isSyncLockNamed(t) {
		return t
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lt := lockTypeRec(u.Field(i).Type(), seen); lt != nil {
				return lt
			}
		}
	case *types.Array:
		return lockTypeRec(u.Elem(), seen)
	}
	return nil
}

func isSyncLockNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ---- sub-check 2: held at exit -------------------------------------------

// lockOp classifies a statement's effect on tracked mutexes.
type lockOp struct {
	key     string // receiver expression + read/write mode
	acquire bool
	pos     token.Pos
}

// lockCall decodes expr as a sync Lock/RLock/Unlock/RUnlock call on a
// trackable receiver (an expression without calls). mode "w" pairs
// Lock/Unlock, "r" pairs RLock/RUnlock.
func lockCall(info *types.Info, call *ast.CallExpr) (op lockOp, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return op, false
	}
	fn, _ := info.ObjectOf(sel.Sel).(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return op, false
	}
	var mode string
	switch fn.Name() {
	case "Lock", "Unlock":
		mode = "w"
	case "RLock", "RUnlock":
		mode = "r"
	default:
		return op, false
	}
	if hasCall(sel.X) {
		return op, false // e.g. s.lockFor(name).Lock(): not trackable
	}
	return lockOp{
		key:     types.ExprString(sel.X) + "/" + mode,
		acquire: fn.Name() == "Lock" || fn.Name() == "RLock",
		pos:     call.Pos(),
	}, true
}

func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// lockState is one control-flow path's view of the mutexes acquired in
// the function under analysis.
type lockState struct {
	held     map[string]token.Pos // key → acquire position
	deferred map[string]bool      // key → a defer will release it
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// canon is a canonical rendering for state deduplication.
func (s *lockState) canon() string {
	var parts []string
	for k := range s.held {
		if !s.deferred[k] {
			parts = append(parts, k)
		} else {
			parts = append(parts, k+"+d")
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// maxLockStates bounds path explosion; beyond it paths are merged by
// canonical state, which loses nothing (equal states analyze equally).
const maxLockStates = 64

func dedupStates(states []*lockState) []*lockState {
	seen := make(map[string]bool)
	var out []*lockState
	for _, s := range states {
		key := s.canon()
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	}
	if len(out) > maxLockStates {
		out = out[:maxLockStates]
	}
	return out
}

func checkHeldAtExit(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch d := n.(type) {
			case *ast.FuncDecl:
				body = d.Body
			case *ast.FuncLit:
				body = d.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			a := &exitAnalysis{pass: pass, reported: map[string]bool{}}
			exits := a.execList(body.List, []*lockState{newLockState()})
			// Falling off the end of the function is an exit too.
			a.checkExit(body.Rbrace, "function exit", exits)
			return true // nested function literals analyzed independently
		})
	}
}

type exitAnalysis struct {
	pass     *analysis.Pass
	reported map[string]bool
}

func (a *exitAnalysis) checkExit(pos token.Pos, what string, states []*lockState) {
	for _, s := range states {
		for key, acq := range s.held {
			if s.deferred[key] {
				continue
			}
			name := key[:strings.LastIndex(key, "/")]
			rkey := fmt.Sprintf("%d/%s/%s", pos, what, key)
			if a.reported[rkey] {
				continue
			}
			a.reported[rkey] = true
			a.pass.Reportf(pos,
				"%s with %s still held (acquired at line %d) and no defer on this path; release it before exiting or use defer %s.Unlock()",
				what, name, a.pass.Fset.Position(acq).Line, name)
		}
	}
}

// execList pushes states through a statement list, returning the states
// that fall out the bottom. Paths ending in return/panic are checked and
// dropped.
func (a *exitAnalysis) execList(stmts []ast.Stmt, in []*lockState) []*lockState {
	states := in
	for _, st := range stmts {
		states = a.exec(st, states)
		if len(states) == 0 {
			break // all paths terminated
		}
		states = dedupStates(states)
	}
	return states
}

func (a *exitAnalysis) exec(stmt ast.Stmt, in []*lockState) []*lockState {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return a.execList(st.List, in)
	case *ast.LabeledStmt:
		return a.exec(st.Stmt, in)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return in
		}
		if op, ok := lockCall(a.pass.TypesInfo, call); ok {
			for _, s := range in {
				if op.acquire {
					s.held[op.key] = op.pos
				} else {
					delete(s.held, op.key)
					delete(s.deferred, op.key)
				}
			}
			return in
		}
		if isPanicCall(a.pass.TypesInfo, call) {
			a.checkExit(st.Pos(), "panic", in)
			return nil
		}
		if isProcessExitCall(a.pass.TypesInfo, call) {
			return nil // process ends; lock state is moot
		}
		return in
	case *ast.DeferStmt:
		a.registerDefer(st.Call, in)
		return in
	case *ast.ReturnStmt:
		a.checkExit(st.Pos(), "return", in)
		return nil
	case *ast.BranchStmt:
		// break/continue/goto end this path's linear analysis without
		// leaving the function; conservative no-check.
		if st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO {
			return nil
		}
		return in
	case *ast.IfStmt:
		if st.Init != nil {
			in = a.exec(st.Init, in)
		}
		thenIn, elseIn := cloneAll(in), in
		out := a.exec(st.Body, thenIn)
		if st.Else != nil {
			out = append(out, a.exec(st.Else, elseIn)...)
		} else {
			out = append(out, elseIn...)
		}
		return dedupStates(out)
	case *ast.ForStmt:
		if st.Init != nil {
			in = a.exec(st.Init, in)
		}
		out := append(cloneAll(in), a.exec(st.Body, in)...) // zero or one iteration
		return dedupStates(out)
	case *ast.RangeStmt:
		out := append(cloneAll(in), a.exec(st.Body, in)...)
		return dedupStates(out)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		var init ast.Stmt
		hasDefault := false
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			body, init = sw.Body, sw.Init
		case *ast.TypeSwitchStmt:
			body, init = sw.Body, sw.Init
		case *ast.SelectStmt:
			body = sw.Body
		}
		if init != nil {
			in = a.exec(init, in)
		}
		var out []*lockState
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch c := cc.(type) {
			case *ast.CaseClause:
				stmts = c.Body
				if c.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				stmts = c.Body
				if c.Comm == nil {
					hasDefault = true
				}
			}
			out = append(out, a.execList(stmts, cloneAll(in))...)
		}
		if !hasDefault {
			out = append(out, in...) // no case taken
		}
		return dedupStates(out)
	case *ast.GoStmt:
		return in // runs on another goroutine; out of scope
	default:
		return in
	}
}

// registerDefer marks locks released by a deferred call, including
// defer func() { …; mu.Unlock(); … }() closures.
func (a *exitAnalysis) registerDefer(call *ast.CallExpr, states []*lockState) {
	mark := func(op lockOp) {
		if op.acquire {
			return
		}
		for _, s := range states {
			s.deferred[op.key] = true
		}
	}
	if op, ok := lockCall(a.pass.TypesInfo, call); ok {
		mark(op)
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if op, ok := lockCall(a.pass.TypesInfo, c); ok {
					mark(op)
				}
			}
			return true
		})
	}
}

func cloneAll(states []*lockState) []*lockState {
	out := make([]*lockState, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isProcessExitCall recognizes calls that terminate the process, where
// held locks are irrelevant.
func isProcessExitCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
		return true
	case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
		return true
	}
	return false
}

// ---- sub-check 3: guarded-by annotations ---------------------------------

var (
	guardedByRe   = regexp.MustCompile(`guarded by (?:[A-Za-z_]\w*\.)*([A-Za-z_]\w*)`)
	callerHoldsRe = regexp.MustCompile(`[Cc]allers? (?:must )?holds? (?:[A-Za-z_]\w*\.)*([A-Za-z_]\w*)`)
)

// guardedField is one `// guarded by mu` annotation.
type guardedField struct {
	structType types.Type
	field      string
	mu         string
}

func checkGuardedFields(pass *analysis.Pass) {
	info := pass.TypesInfo
	var guards []guardedField
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def := info.Defs[ts.Name]
			if def == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					guards = append(guards, guardedField{structType: def.Type(), field: name.Name, mu: mu})
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := heldGuards(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base := info.TypeOf(sel.X)
				if base == nil {
					return true
				}
				if p, ok := base.Underlying().(*types.Pointer); ok {
					base = p.Elem()
				}
				for _, g := range guards {
					if sel.Sel.Name != g.field || !types.Identical(base, g.structType) {
						continue
					}
					if held[g.mu] {
						continue
					}
					pass.Reportf(sel.Pos(),
						"%s.%s is annotated `guarded by %s` but %s neither locks %s nor is documented `caller holds %s`",
						nameOf(g.structType), g.field, g.mu, fd.Name.Name, g.mu, g.mu)
				}
				return true
			})
		}
	}
}

// guardAnnotation extracts the mutex name of a field's `guarded by`
// comment (doc or trailing line comment).
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// heldGuards returns the set of mutex names a function satisfies: it
// locks them in its body (any mode) or its doc comment declares
// `caller holds <mu>`.
func heldGuards(info *types.Info, fd *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	if fd.Doc != nil {
		for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			held[m[1]] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := info.ObjectOf(sel.Sel).(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock":
			// The guard's identity is the last component of the receiver
			// chain: s.mu.Lock() satisfies `guarded by mu`.
			expr := types.ExprString(sel.X)
			if i := strings.LastIndex(expr, "."); i >= 0 {
				expr = expr[i+1:]
			}
			held[expr] = true
		}
		return true
	})
	return held
}

func nameOf(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
