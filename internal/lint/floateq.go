package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// FloatEq flags == and != between floating-point operands (including
// structs with float components) outside _test.go files. Exact float
// comparison in a kernel silently narrows "equal" to "bit-identical",
// which is correct only for sentinel values; the codebase's sanctioned
// spellings are math.IsInf for sentinels and tolerance helpers for real
// comparisons. Registered-exempt closures — IsZero semiring callbacks and
// functions whose name ends in IsZero, whose contract is precisely
// identity-element bit-equality — are not flagged.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between float64 expressions outside tests and " +
		"IsZero semiring callbacks",
	Run: runFloatEq,
}

func runFloatEq(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		exempt := exemptRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if exempt.contains(be.Pos()) {
				return true
			}
			tx, ty := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
			if !typeHasFloat(tx.Type) && !typeHasFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded comparison, deterministic
			}
			pass.Reportf(be.Pos(),
				"float %s compares exact bits; use math.IsInf for sentinels or a tolerance helper, or annotate //lint:allow floateq <reason> if bit-exactness is intended",
				be.Op)
			return true
		})
	}
	return nil
}

// posRanges is a set of source intervals.
type posRanges [][2]token.Pos

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv[0] && p < iv[1] {
			return true
		}
	}
	return false
}

// exemptRanges collects the registered-exempt function bodies of a file:
// functions named *IsZero, and function literals bound to an IsZero field
// of a composite literal (the semiring Monoid construction sites).
func exemptRanges(f *ast.File) posRanges {
	var out posRanges
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if strings.HasSuffix(d.Name.Name, "IsZero") && d.Body != nil {
				out = append(out, [2]token.Pos{d.Body.Pos(), d.Body.End()})
			}
		case *ast.KeyValueExpr:
			if key, ok := d.Key.(*ast.Ident); ok && key.Name == "IsZero" {
				if lit, ok := d.Value.(*ast.FuncLit); ok {
					out = append(out, [2]token.Pos{lit.Body.Pos(), lit.Body.End()})
				}
			}
		}
		return true
	})
	return out
}
