package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The exemption syntax understood by the suite:
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the same line as the finding or on its own line
// immediately above. The reason is mandatory: an exemption without a
// recorded why is indistinguishable from a silenced bug.

type allowKey struct {
	file string
	line int
	name string
}

type allowSet struct {
	set  map[allowKey]bool
	used map[allowKey]bool
}

// collectAllows indexes every well-formed //lint:allow comment by file,
// line, and analyzer name.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	as := &allowSet{set: make(map[allowKey]bool), used: make(map[allowKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				as.set[allowKey{file: pos.Filename, line: pos.Line, name: name}] = true
			}
		}
	}
	return as
}

// parseAllow extracts the analyzer name from an allow comment, requiring a
// non-empty reason after it.
func parseAllow(text string) (string, bool) {
	body, ok := strings.CutPrefix(text, "//lint:allow ")
	if !ok {
		return "", false
	}
	fields := strings.Fields(body)
	if len(fields) < 2 { // name + at least one reason word
		return "", false
	}
	return fields[0], true
}

// allowed reports whether a finding of analyzer name at pos is exempted:
// an allow comment sits on the finding's line or the line above.
func (as *allowSet) allowed(pos token.Position, name string) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		k := allowKey{file: pos.Filename, line: line, name: name}
		if as.set[k] {
			as.used[k] = true
			return true
		}
	}
	return false
}
