// Package analysis is a self-contained miniature of golang.org/x/tools'
// go/analysis framework: just enough surface (Analyzer, Pass, Diagnostic)
// for this repository's custom analyzers, drivers, and fixture tests.
//
// The real x/tools module is the natural home for this API, but the build
// environment this repo targets is fully offline (no module proxy, empty
// module cache), so the dependency cannot be added with a committed
// go.sum. The API below is deliberately shaped like go/analysis so that
// the analyzers port mechanically if/when x/tools becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks and
	// why the invariant matters.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// IsTestFile reports whether pos lies in a _test.go file. The suite's
// analyzers enforce invariants of production code; test files are exempt
// across the board (they deliberately construct off-registry phase names,
// exact float comparisons against golden values, and so on).
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies analyzers to one type-checked package and returns the
// surviving diagnostics sorted by position: findings suppressed by a
// //lint:allow annotation (see Allowed) are dropped, and findings in
// _test.go files are dropped driver-wide.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := collectAllows(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diagnostics {
			if pass.IsTestFile(d.Pos) {
				continue
			}
			if allow.allowed(fset.Position(d.Pos), a.Name) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
