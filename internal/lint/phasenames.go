package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/machine"
)

// PhaseNames flags Proc.Phase(...) calls whose argument is not a string
// constant drawn from the canonical phase registry in internal/machine.
// Per-phase cost attribution is joined by name across reports, benches,
// and the PATCH response; an off-registry spelling forks the key space
// silently. The registry itself (machine.CanonicalPhases) is the single
// source of truth — extend it there first.
//
// In the observability package (basename "obs") it additionally checks
// the phase-label table: every canonical machine phase must appear as a
// key of the phaseLabels map, so per-phase metric families and span names
// can never silently drop a phase added to the registry.
var PhaseNames = &analysis.Analyzer{
	Name: "phasenames",
	Doc: "flags Proc.Phase calls whose argument is not a canonical " +
		"phase-registry constant, and obs phase-label tables that do not " +
		"cover the registry",
	Run: runPhaseNames,
}

func runPhaseNames(pass *analysis.Pass) error {
	registry := strings.Join(machine.CanonicalPhases(), "/")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Phase" || fn.Pkg() == nil || !isMachinePackage(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || len(call.Args) != 1 {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"Proc.Phase argument must be a string constant from the machine phase registry (%s): dynamic names fork the per-phase attribution key space", registry)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !machine.IsCanonicalPhase(name) {
				pass.Reportf(call.Args[0].Pos(),
					"Proc.Phase name %q is not in the canonical phase registry (%s); add it to machine.CanonicalPhases or use a registered name", name, registry)
			}
			return true
		})
	}
	if path := pass.Pkg.Path(); path == "obs" || strings.HasSuffix(path, "/obs") {
		checkPhaseLabelTable(pass)
	}
	return nil
}

// checkPhaseLabelTable verifies the obs package's phaseLabels map literal
// covers every canonical machine phase. The map keys are the machine
// phase constants, so their values are available to the type checker and
// the coverage check is purely static.
func checkPhaseLabelTable(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "phaseLabels" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					keys := make(map[string]bool)
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if tv := pass.TypesInfo.Types[kv.Key]; tv.Value != nil && tv.Value.Kind() == constant.String {
							keys[constant.StringVal(tv.Value)] = true
						}
					}
					for _, ph := range machine.CanonicalPhases() {
						if !keys[ph] {
							pass.Reportf(cl.Pos(),
								"obs phase-label table is missing machine phase %q: every canonical phase needs a stable metric/span label (extend phaseLabels)", ph)
						}
					}
				}
			}
		}
	}
}
