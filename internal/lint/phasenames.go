package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/machine"
)

// PhaseNames flags Proc.Phase(...) calls whose argument is not a string
// constant drawn from the canonical phase registry in internal/machine.
// Per-phase cost attribution is joined by name across reports, benches,
// and the PATCH response; an off-registry spelling forks the key space
// silently. The registry itself (machine.CanonicalPhases) is the single
// source of truth — extend it there first.
var PhaseNames = &analysis.Analyzer{
	Name: "phasenames",
	Doc: "flags Proc.Phase calls whose argument is not a canonical " +
		"phase-registry constant",
	Run: runPhaseNames,
}

func runPhaseNames(pass *analysis.Pass) error {
	registry := strings.Join(machine.CanonicalPhases(), "/")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Phase" || fn.Pkg() == nil || !isMachinePackage(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || len(call.Args) != 1 {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"Proc.Phase argument must be a string constant from the machine phase registry (%s): dynamic names fork the per-phase attribution key space", registry)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !machine.IsCanonicalPhase(name) {
				pass.Reportf(call.Args[0].Pos(),
					"Proc.Phase name %q is not in the canonical phase registry (%s); add it to machine.CanonicalPhases or use a registered name", name, registry)
			}
			return true
		})
	}
	return nil
}
