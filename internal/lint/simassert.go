package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// SimAssert flags type assertions and type-switch cases that name a
// concrete type from the simulated backend (internal/machine/sim) outside
// the machine tree. Callers hold a machine.Transport; downcasting it to
// the sim backend couples them to one transport and silently breaks when
// the same code runs over tcpnet. Capability probes through interfaces
// (e.g. `tr.(interface{ SetModel(machine.CostModel) })`) stay legal — the
// analyzer only matches named sim types, not interface shapes.
var SimAssert = &analysis.Analyzer{
	Name: "simassert",
	Doc: "flags type assertions to sim-backend concrete types outside " +
		"internal/machine; callers must stay transport-agnostic",
	Run: runSimAssert,
}

// isSimPackage reports whether a package path is the simulated backend
// (repro/internal/machine/sim, or a fixture package named sim).
func isSimPackage(path string) bool {
	return path == "sim" || strings.HasSuffix(path, "/sim")
}

// inMachineTree reports whether a package path is the machine package or
// one of its sub-packages (the backends themselves), which legitimately
// name sim types.
func inMachineTree(path string) bool {
	return isMachinePackage(path) || strings.Contains(path, "machine/")
}

func runSimAssert(pass *analysis.Pass) error {
	if inMachineTree(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.TypeAssertExpr:
				// A type switch guard `x.(type)` carries a nil Type; its
				// cases are handled below.
				if node.Type != nil {
					checkSimType(pass, node.Type)
				}
			case *ast.TypeSwitchStmt:
				for _, stmt := range node.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, texpr := range cc.List {
						checkSimType(pass, texpr)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkSimType reports e when it names (possibly through pointers) a type
// defined in the sim backend package.
func checkSimType(pass *analysis.Pass, e ast.Expr) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return
	}
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !isSimPackage(obj.Pkg().Path()) {
		return
	}
	pass.Reportf(e.Pos(),
		"type assertion on sim-backend type %s.%s outside internal/machine; program against machine.Transport",
		obj.Pkg().Name(), obj.Name())
}
