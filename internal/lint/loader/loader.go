// Package loader type-checks Go packages from source for the mfbc-lint
// standalone driver and the analyzer fixture tests.
//
// The environment this repo builds in has no module proxy and no
// pre-compiled export data, so the loader resolves imports itself: module
// packages ("repro/...") from the module tree, fixture packages from an
// optional GOPATH-style fixture root, and everything else from GOROOT
// source via go/build. Dependency packages are checked with function
// bodies ignored — only their exported API is needed — which keeps a full
// ./... load within a few seconds.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs holds type-checking errors. Dependency packages tolerate
	// errors (their API usually still resolves); drivers must refuse to
	// trust analysis of a target package that has any.
	Errs []error
}

// Loader loads and caches packages.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod; ModulePath is the
	// declared module path ("repro").
	ModuleRoot string
	ModulePath string
	// FixtureRoot, when set, resolves import paths that are neither
	// module-local nor standard as FixtureRoot/<path> (the GOPATH-style
	// layout of analyzer testdata).
	FixtureRoot string

	ctxt    build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// New returns a loader rooted at the given module directory.
func New(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // pure-Go stdlib variants type-check from source
	ctxt.GOPATH = ""
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		ctxt:       ctxt,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loader: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// ModulePackages lists the import paths of every package in the module,
// sorted — the loader-side equivalent of the ./... pattern. testdata and
// hidden directories are skipped, as the go tool does.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.ModuleRoot, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.ModulePath)
				} else {
					out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Load returns the type-checked package at the given import path, loading
// it (and its dependencies) on first use. Analysis targets should be
// loaded with full function bodies via this method; dependencies reached
// through imports are checked API-only.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path, false)
}

// Import implements types.Importer for dependency resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path, true)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *Loader) load(path string, depOnly bool) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Types: types.Unsafe}, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, files, err := l.sources(path)
	if err != nil {
		return nil, err
	}
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", path, err)
		}
		parsed = append(parsed, f)
	}

	pkg := &Package{Path: path, Dir: dir, Files: parsed}
	cfg := &types.Config{
		Importer:    l,
		FakeImportC: true,
		// Module-local and fixture packages are always fully checked:
		// one may be loaded first as a dependency and later become an
		// analysis target, and the cache must not pin an API-only copy.
		IgnoreFuncBodies: depOnly && !l.isLocal(path),
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error:            func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Check returns the (possibly incomplete) package even on error;
	// errors are already collected on pkg.Errs.
	tpkg, _ := cfg.Check(path, l.Fset, parsed, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// isLocal reports whether path is module-local or a fixture package.
func (l *Loader) isLocal(path string) bool {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return true
	}
	if l.FixtureRoot != "" {
		if st, err := os.Stat(filepath.Join(l.FixtureRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
			return true
		}
	}
	return false
}

// sources resolves an import path to a directory and its buildable
// non-test Go files.
func (l *Loader) sources(path string) (string, []string, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		return l.dirSources(path, dir)
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return l.dirSources(path, dir)
		}
	}
	bp, err := l.ctxt.Import(path, l.ModuleRoot, 0)
	if err != nil {
		return "", nil, fmt.Errorf("loader: resolving %q: %w", path, err)
	}
	return bp.Dir, bp.GoFiles, nil
}

func (l *Loader) dirSources(path, dir string) (string, []string, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return "", nil, fmt.Errorf("loader: resolving %q in %s: %w", path, dir, err)
	}
	return dir, bp.GoFiles, nil
}
