package lint

import (
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/loader"
)

func TestMapRangeFold(t *testing.T) {
	analysistest.Run(t, "testdata", MapRangeFold, "maprangefold")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", FloatEq, "floateq")
}

func TestLockScope(t *testing.T) {
	analysistest.Run(t, "testdata", LockScope, "lockscope")
}

func TestPhaseNames(t *testing.T) {
	analysistest.Run(t, "testdata", PhaseNames, "phasenames")
}

func TestPhaseNamesObsTable(t *testing.T) {
	analysistest.Run(t, "testdata", PhaseNames, "obs")
}

func TestDetSource(t *testing.T) {
	analysistest.Run(t, "testdata", DetSource, "detsource/core")
}

func TestSimAssert(t *testing.T) {
	analysistest.Run(t, "testdata", SimAssert, "simassert/caller")
}

// TestSimAssertMachineTreeExempt: inside the machine tree the backends
// legitimately name sim types; the fixture carries no want comments.
func TestSimAssertMachineTreeExempt(t *testing.T) {
	analysistest.Run(t, "testdata", SimAssert, "simassert/machine")
}

// TestRepositoryClean runs the full suite over every package of the
// module: the same gate CI applies via go vet -vettool, kept inside plain
// `go test ./...` so a finding can never land unnoticed.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("module package walk found nothing")
	}
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.Errs) > 0 {
			t.Fatalf("%s does not type-check under the lint loader: %v", path, pkg.Errs[0])
		}
		diags, err := analysis.Run(l.Fset, pkg.Files, pkg.Types, pkg.Info, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", l.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestAnalyzerRegistry pins the suite's composition: six analyzers with
// stable, distinct names (the names are part of the //lint:allow syntax).
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"maprangefold", "floateq", "lockscope", "phasenames", "detsource", "simassert"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
