// Package lint hosts the mfbc-lint analyzers: custom static checks that
// mechanically enforce this repository's determinism and concurrency
// invariants (bit-identical differential pinning, SPMD-consistent machine
// regions, lock discipline, canonical phase attribution).
//
// Every analyzer supports the exemption annotation
//
//	//lint:allow <analyzer> <reason>
//
// on the finding's line or the line immediately above; the reason is
// mandatory. Test files (_test.go) are exempt from all analyzers.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRangeFold,
		FloatEq,
		LockScope,
		PhaseNames,
		DetSource,
		SimAssert,
	}
}

// calleeFunc resolves the called function/method of a call expression,
// or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// isMachinePackage reports whether a package path is the machine-model
// package (repro/internal/machine, or a fixture package named machine).
func isMachinePackage(path string) bool {
	return path == "machine" || strings.HasSuffix(path, "/machine")
}

// typeHasFloat reports whether a type transitively contains a
// floating-point component (through structs and arrays, not pointers).
func typeHasFloat(t types.Type) bool {
	return typeHasFloatRec(t, make(map[types.Type]bool))
}

func typeHasFloatRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasFloatRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasFloatRec(u.Elem(), seen)
	}
	return false
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (x, x.f, x[i].f, (*x).f → x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the identifier resolves to a variable
// declared outside the [pos, end) node span (i.e. loop-external state).
func declaredOutside(info *types.Info, id *ast.Ident, node ast.Node) bool {
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < node.Pos() || v.Pos() >= node.End()
}
