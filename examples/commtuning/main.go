// Communication tuning: explore the decomposition space of §5.2 the way
// CTF's mapper does — estimate the cost of every 1D/2D/3D plan for an MFBC
// frontier multiplication, then measure a few of them for real and compare
// against the automatic choice.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spgemm"
)

func main() {
	const p = 64
	g, err := repro.StandinGraph("orkut-sim", 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	model := machine.DefaultModel()
	nb := 64
	problem := spgemm.Problem{
		M: nb, K: g.N, N: g.N,
		NNZA:   int64(float64(nb) * g.AvgDegree()),
		NNZB:   int64(g.AdjacencyNNZ()),
		BytesA: 24, BytesB: 16, BytesC: 24,
	}

	// Rank every decomposition by modeled cost.
	type scored struct {
		plan spgemm.Plan
		cost float64
	}
	var all []scored
	for _, f := range machine.Factorizations3(p) {
		for _, x := range []spgemm.Role{spgemm.RoleA, spgemm.RoleB, spgemm.RoleC} {
			for _, yz := range []spgemm.Variant{spgemm.VarAB, spgemm.VarAC, spgemm.VarBC} {
				plan := spgemm.Plan{P1: f[0], P2: f[1], P3: f[2], X: x, YZ: yz}
				all = append(all, scored{plan, spgemm.Estimate(plan, problem, model)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].cost < all[j].cost })
	fmt.Printf("decomposition space for one frontier product on p=%d (%d plans):\n", p, len(all))
	fmt.Println("  best five by modeled cost:")
	for _, s := range all[:5] {
		fmt.Printf("    %-22s %.6fs\n", s.plan, s.cost)
	}
	fmt.Printf("  worst: %-22s %.6fs (%.0fx the best)\n",
		all[len(all)-1].plan, all[len(all)-1].cost, all[len(all)-1].cost/all[0].cost)

	// Measure a representative subset end to end on one source batch.
	sources := make([]int32, nb)
	for i := range sources {
		sources[i] = int32(i)
	}
	candidates := []spgemm.Plan{
		all[0].plan, // model's favourite
		{P1: 1, P2: 8, P3: 8, X: spgemm.RoleA, YZ: spgemm.VarAB},  // flat 2D SUMMA
		{P1: 64, P2: 1, P3: 1, X: spgemm.RoleB, YZ: spgemm.VarAB}, // 1D adjacency replication
		{P1: 4, P2: 4, P3: 4, X: spgemm.RoleB, YZ: spgemm.VarAC},  // Theorem 5.1 layout
	}
	fmt.Println("\nmeasured (modeled critical path) per batch:")
	for _, plan := range candidates {
		plan := plan
		res, err := core.MFBCDistributed(g, core.DistOptions{
			Procs: p, Sources: sources, Plan: &plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s model %.4fs  comm %.4fs  (%6.2f MB, %d msgs)\n",
			plan, res.Stats.ModelSec, res.Stats.CommSec,
			float64(res.Stats.MaxCost.Bytes)/1e6, res.Stats.MaxCost.Msgs)
	}

	// And the fully automatic run for reference.
	auto, err := core.MFBCDistributed(g, core.DistOptions{Procs: p, Sources: sources})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautomatic search chose %s: model %.4fs\n", auto.Plan, auto.Stats.ModelSec)
}
