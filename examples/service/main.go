// Service walkthrough: embed the BC query service in-process, expose it
// over HTTP (the same mux cmd/mfbc-serve uses), and run a client session
// demonstrating the tentpole behaviors — registry, result caching,
// single-flight coalescing of concurrent identical queries, and the cheap
// sampling path for interactive use.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/internal/server"
)

func main() {
	// The embeddable service: one Workers pool shared by all queries so a
	// busy host is never oversubscribed, plus a bounded result cache.
	svc := server.New(server.Config{Workers: 0, CacheSize: 128})
	ts := httptest.NewServer(server.NewMux(svc))
	defer ts.Close()
	fmt.Printf("mfbc service listening on %s\n\n", ts.URL)

	// --- 1. Register a graph (what `curl -X POST /graphs/social` does).
	post(ts.URL+"/graphs/social", server.GraphSpec{
		Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 42,
	})

	// --- 2. Exact top-10 query: first call computes...
	res := query(ts.URL, server.QueryRequest{Graph: "social", K: 10})
	fmt.Printf("exact top-10 (computed in %.1f ms, cache_hit=%v):\n",
		res.Stats.ComputeMS, res.Stats.CacheHit)
	for i, vs := range res.TopK {
		fmt.Printf("  #%-2d vertex %-6d bc %.6g\n", i+1, vs.Vertex, vs.Score)
	}

	// --- 3. ...and the repeat is served from cache.
	res = query(ts.URL, server.QueryRequest{Graph: "social", K: 10})
	fmt.Printf("\nrepeat query: cache_hit=%v (original compute %.1f ms)\n",
		res.Stats.CacheHit, res.Stats.ComputeMS)

	// --- 4. Ten concurrent identical distributed queries: single-flight
	// collapses them onto one SpGEMM sweep.
	var wg sync.WaitGroup
	results := make([]*server.QueryResult, 10)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = query(ts.URL, server.QueryRequest{Graph: "social", Procs: 16, K: 1})
		}(i)
	}
	wg.Wait()
	coalesced := 0
	for _, r := range results {
		if r.Stats.Coalesced || r.Stats.CacheHit {
			coalesced++
		}
	}
	fmt.Printf("\n10 concurrent distributed queries: %d shared one compute (plan %s, modeled %.2g s comm)\n",
		coalesced, results[0].Plan, results[0].Stats.Comm.CommSec)

	// --- 5. The interactive cheap path: sampling-based approximation at a
	// fraction of the cost, good for exploratory top-k.
	res = query(ts.URL, server.QueryRequest{Graph: "social", Samples: 32, Seed: 7, K: 5})
	fmt.Printf("\napproximate top-5 from 32 sampled sources (%.1f ms):\n", res.Stats.ComputeMS)
	for i, vs := range res.TopK {
		fmt.Printf("  #%-2d vertex %-6d bc≈%.6g\n", i+1, vs.Vertex, vs.Score)
	}

	// --- 6. Server-wide counters.
	var stats server.Stats
	getJSON(ts.URL+"/stats", &stats)
	fmt.Printf("\nserver stats: %d queries, %d cache hits, %d coalesced, %d computes\n",
		stats.Queries, stats.CacheHits, stats.Coalesced, stats.Computes)
}

func post(url string, body any) {
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}

func query(base string, req server.QueryRequest) *server.QueryResult {
	b, _ := json.Marshal(req)
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("query: %s", resp.Status)
	}
	var out server.QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return &out
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
