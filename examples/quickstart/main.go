// Quickstart: compute betweenness centrality on a small power-law graph
// with the MFBC engine and verify it against the textbook Brandes oracle.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	// A power-law graph with ~1k vertices and average degree ~8, the kind
	// of social-network topology that motivates the paper.
	g := repro.RMATGraph(10, 8, 42)
	fmt.Printf("graph %s: n=%d m=%d\n", g.Name, g.N, g.M())

	// The paper's algorithm (Algorithm 3): batches of sources, each batch
	// one MFBF forward sweep plus one MFBr backward sweep.
	mfbc, err := repro.Compute(g, repro.Options{Engine: repro.EngineMFBC, Batch: 64})
	if err != nil {
		log.Fatal(err)
	}

	// The oracle.
	brandes, err := repro.Compute(g, repro.Options{Engine: repro.EngineBrandes})
	if err != nil {
		log.Fatal(err)
	}

	maxDiff := 0.0
	for v := range mfbc.BC {
		if d := math.Abs(mfbc.BC[v] - brandes.BC[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("MFBC vs Brandes: max |Δ| = %.3g over %d vertices\n", maxDiff, g.N)

	fmt.Println("top 5 most central vertices:")
	for rank, v := range repro.TopK(mfbc.BC, 5) {
		fmt.Printf("  #%d vertex %d  bc=%.1f\n", rank+1, v, mfbc.BC[v])
	}
}
