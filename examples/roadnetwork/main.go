// Road-network analysis: betweenness centrality on a *weighted* mesh — the
// workload class the paper's MFBC supports and CombBLAS does not (its BFS
// formulation is unweighted-only). Identifies the chokepoint intersections
// of a city grid with random travel times.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const rows, cols = 24, 24
	// Travel times 1..9 per road segment.
	g := repro.GridGraph(rows, cols, 9, 123)
	fmt.Printf("road network %s: n=%d m=%d (weighted)\n", g.Name, g.N, g.M())

	// CombBLAS-style rejects weighted graphs — the limitation the paper
	// calls out.
	if _, err := repro.Compute(g, repro.Options{Engine: repro.EngineCombBLAS}); err != nil {
		fmt.Printf("combblas engine: %v\n", err)
	}

	// MFBC handles weights natively via the multpath monoid.
	res, err := repro.Compute(g, repro.Options{
		Engine: repro.EngineMFBC,
		Procs:  4,
		Batch:  96,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MFBC finished in %d frontier rounds on p=%d (plan %s)\n",
		res.Iterations, res.Procs, res.Plan)

	fmt.Println("top 8 chokepoint intersections:")
	for rank, v := range repro.TopK(res.BC, 8) {
		fmt.Printf("  #%d intersection (%2d,%2d)  bc=%.0f\n", rank+1, v/cols, v%cols, res.BC[v])
	}

	// Sanity: weighted Brandes agrees.
	oracle, err := repro.Compute(g, repro.Options{Engine: repro.EngineBrandes})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for v := range res.BC {
		d := res.BC[v] - oracle.BC[v]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |Δ| vs Dijkstra-Brandes oracle: %.3g\n", maxDiff)
}
