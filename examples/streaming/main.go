// Streaming walkthrough: maintain betweenness centrality over a live,
// mutating graph with the dynamic engine.
//
// Part 1 streams traffic-style weight updates over a weighted mesh (a
// road-network profile: near-unique shortest paths keep each update
// local), comparing every incremental refresh against what a full
// recomputation of the same topology costs. Part 2 switches a power-law
// R-MAT graph — where a small diameter makes almost every source dirty,
// so exact maintenance degenerates — to the cheap sampled-estimate mode
// with periodic exact refreshes, each estimate carrying its Hoeffding
// error bound. Part 3 runs the same kind of stream on the simulated
// distributed machine (Procs: 4): the stationary adjacency operands stay
// resident across applies, and each incremental apply executes as ONE
// fused machine region — the old-side and new-side pivot re-runs ride the
// same supersteps over the pair semiring, with the edge diff scattered and
// spliced mid-region — so the latency term (S) is paid once, not twice.
// The per-apply report breaks the cost into its diff/patch/sweep/reduce
// phases.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	// A mesh with continuous edge weights: like real road travel times,
	// shortest paths are (almost surely) unique, so a weight update only
	// disturbs the sources actually routing through the touched link. The
	// integer-weighted generators would instead create huge shortest-path
	// tie sets where every jitter cascades graph-wide.
	g := repro.GridGraph(22, 22, 1, 42)
	wrng := rand.New(rand.NewSource(11))
	for i := range g.Edges {
		g.Edges[i].W = 1 + 29*wrng.Float64()
	}
	g.Weighted = true
	fmt.Printf("live graph: %q  n=%d m=%d (weighted mesh ≈ road network)\n\n", g.Name, g.N, g.M())

	start := time.Now()
	dyn, err := repro.NewDynamicBC(g, repro.DynamicOptions{Workers: 0, DirtyThreshold: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial exact compute: %.1f ms\n\n", ms(time.Since(start)))

	// --- 1. Update stream: apply small seeded mutation batches (mostly
	// congestion-style reweights, plus the odd link add/drop) and time
	// each refresh against a from-scratch recompute of the same topology.
	// The engine adapts per batch: updates touching few shortest paths
	// re-run only the affected pivots, while arterial-edge updates whose
	// affected fraction exceeds the dirtiness threshold recompute fully.
	fmt.Println("batch  muts  affected/n     strategy       refresh      full recompute   max |Δ|")
	rng := rand.New(rand.NewSource(7))
	for round := 1; round <= 8; round++ {
		batch := roadBatch(rng, dyn.Graph(), 1+rng.Intn(2))
		rep, err := dyn.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		full, err := repro.Compute(dyn.Graph(), repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fullMS := ms(time.Since(t0))

		snap := dyn.Scores()
		var maxDiff float64
		for v := range full.BC {
			if d := abs(snap.BC[v] - full.BC[v]); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("%5d  %4d  %6d/%-5d  %-11s  %9.1f ms  %12.1f ms   %.2g\n",
			round, rep.Applied, rep.Affected, rep.N, rep.Strategy,
			rep.WallMS, fullMS, maxDiff)
	}
	st := dyn.Stats()
	fmt.Printf("\nexact stream: %d applies, %d incremental, %d full fallbacks, "+
		"%d affected sources identified in total (a full recompute re-runs %d every time)\n\n",
		st.Applies, st.IncrementalRuns, st.FullRecomputes,
		st.AffectedSources, dyn.Graph().N)

	// --- 2. Sampled-delta mode on a power-law graph: between exact
	// refreshes every 3rd batch, applies estimate from a 32-source sample —
	// milliseconds instead of the full sweep, at bounded accuracy.
	social := repro.RMATGraph(9, 8, 42)
	sampled, err := repro.NewDynamicBC(social, repro.DynamicOptions{
		Workers: 0, SampleBudget: 32, RefreshEvery: 3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled mode on %q n=%d m=%d (budget 32, exact refresh every 3rd batch):\n",
		social.Name, social.N, social.M())
	for round := 1; round <= 6; round++ {
		batch := socialBatch(rng, sampled.Graph(), 6)
		rep, err := sampled.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}
		kind := "estimate"
		bound := fmt.Sprintf("  (95%% half-width ±%.3g)", rep.ErrBound)
		if !rep.Sampled {
			kind = "exact refresh"
			bound = ""
		}
		fmt.Printf("  batch %d: %-13s %-11s %7.1f ms%s\n", round, kind, rep.Strategy, rep.WallMS, bound)
	}

	// --- 3. Distributed streaming: the same engine, but every sweep runs
	// on the simulated 4-processor machine. Incremental applies execute as
	// one fused region (rep.Fused): both sides of the update share each
	// superstep's collectives, the diff arrives by a modeled scatter, and
	// the operand splice is charged as local γ-flops — the per-apply
	// report attributes the cost to the diff/patch/sweep/reduce phases,
	// and the modeled messages sit near a single run instead of two.
	mesh := repro.GridGraph(12, 12, 1, 5)
	drng := rand.New(rand.NewSource(19))
	for i := range mesh.Edges {
		mesh.Edges[i].W = 1 + 29*drng.Float64()
	}
	mesh.Weighted = true
	dist, err := repro.NewDynamicBC(mesh, repro.DynamicOptions{
		Workers: 0, Procs: 4, DirtyThreshold: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	init := dist.Scores()
	fmt.Printf("distributed streaming on %q n=%d m=%d, procs=4 (plan %s):\n",
		mesh.Name, mesh.N, mesh.M(), init.Plan)
	fmt.Println("batch  affected/n     strategy     fused   W (bytes)   S (msgs)   model(s)    plan")
	var lastFused repro.ApplyReport
	for round := 1; round <= 5; round++ {
		rep, err := dist.Apply(roadBatch(rng, dist.Graph(), 1+rng.Intn(2)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %6d/%-5d  %-11s  %5v  %10d  %9d  %9.6f    %s\n",
			round, rep.Affected, rep.N, rep.Strategy, rep.Fused,
			rep.Comm.Bytes, rep.Comm.Msgs, rep.Comm.ModelSec, rep.Plan)
		if rep.Fused {
			lastFused = rep
		}
	}
	if lastFused.Fused {
		fmt.Println("phase attribution of the last fused apply:")
		for _, ph := range lastFused.Phases {
			fmt.Printf("  %-7s W=%-9d S=%-6d flops=%-9d model %.6fs\n",
				ph.Name, ph.Bytes, ph.Msgs, ph.Flops, ph.ModelSec)
		}
	}
	scratch, err := repro.Compute(dist.Graph(), repro.Options{Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	total := dist.Stats().Comm
	fmt.Printf("from-scratch distributed run on the evolved mesh: %d bytes, %d msgs, %.6f model s (plan %s)\n",
		scratch.Comm.Bytes, scratch.Comm.Msgs, scratch.Comm.ModelSec, scratch.Plan)
	fmt.Printf("cumulative stream communication (%d machine runs incl. the initial compute): %d bytes\n\n",
		total.Runs, total.Bytes)

	// --- 4. The mutation log replays the whole history.
	fmt.Printf("\nroad-network mutation log: %d entries", len(dyn.Log()))
	dyn.CompactLog()
	fmt.Printf(" (%d after compaction); current version %016x\n",
		len(dyn.Log()), dyn.Scores().Version)

	top := repro.TopK(dyn.Scores().BC, 5)
	fmt.Println("\ntop-5 central vertices of the evolved road network:")
	for i, v := range top {
		fmt.Printf("  #%d vertex %-6d bc %.6g\n", i+1, v, dyn.Scores().BC[v])
	}
}

// roadBatch draws k valid mutations with a road-traffic profile: mostly
// reweights of existing links, an occasional new link or closure.
func roadBatch(rng *rand.Rand, g *repro.Graph, k int) []repro.Mutation {
	shadow := g.Clone()
	batch := make([]repro.Mutation, 0, k)
	for len(batch) < k {
		var m repro.Mutation
		switch rng.Intn(8) {
		case 0: // close a link
			if shadow.M() <= shadow.N {
				continue
			}
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = repro.Mutation{Op: repro.MutRemoveEdge, U: e.U, V: e.V}
		case 1: // open a new local link
			u := int32(rng.Intn(shadow.N - 1))
			v := u + 1 + int32(rng.Intn(3))
			if int(v) >= shadow.N {
				continue
			}
			if _, exists := shadow.FindEdge(u, v); exists {
				continue
			}
			m = repro.Mutation{Op: repro.MutAddEdge, U: u, V: v, W: 1 + 29*rng.Float64()}
		default: // congestion: a link's travel time creeps up
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = repro.Mutation{Op: repro.MutSetWeight, U: e.U, V: e.V,
				W: e.W * (1.05 + 0.15*rng.Float64())}
		}
		if err := shadow.Apply(m); err != nil {
			continue
		}
		batch = append(batch, m)
	}
	return batch
}

// socialBatch draws k valid mutations with a social-stream profile:
// mostly new edges, some removals, the odd new vertex.
func socialBatch(rng *rand.Rand, g *repro.Graph, k int) []repro.Mutation {
	shadow := g.Clone()
	batch := make([]repro.Mutation, 0, k)
	for len(batch) < k {
		var m repro.Mutation
		switch rng.Intn(6) {
		case 0:
			m = repro.Mutation{Op: repro.MutAddVertex}
		case 1:
			if shadow.M() <= shadow.N {
				continue
			}
			e := shadow.Edges[rng.Intn(shadow.M())]
			m = repro.Mutation{Op: repro.MutRemoveEdge, U: e.U, V: e.V}
		default:
			u, v := int32(rng.Intn(shadow.N)), int32(rng.Intn(shadow.N))
			if u == v {
				continue
			}
			if _, exists := shadow.FindEdge(u, v); exists {
				continue
			}
			m = repro.Mutation{Op: repro.MutAddEdge, U: u, V: v, W: 1}
		}
		if err := shadow.Apply(m); err != nil {
			continue
		}
		batch = append(batch, m)
	}
	return batch
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
