// Approximation and shortest paths: the two extension capabilities built
// on the paper's machinery — sampled-source approximate betweenness
// centrality (the Bader et al. estimator cited in the paper's
// introduction) and multi-source shortest paths with path multiplicities
// (the MFBF sweep standalone).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g := repro.RMATGraph(11, 10, 99)
	fmt.Printf("graph %s: n=%d m=%d\n", g.Name, g.N, g.M())

	// Exact scores (sequential MFBC) as the reference.
	exact, err := repro.Compute(g, repro.Options{Engine: repro.EngineMFBC})
	if err != nil {
		log.Fatal(err)
	}

	// Approximations at increasing sample counts: watch the top-10 overlap
	// converge at a fraction of the cost.
	exactTop := repro.TopK(exact.BC, 10)
	for _, samples := range []int{16, 64, 256} {
		approx, err := repro.ApproximateBC(g, samples, 7, repro.Options{Engine: repro.EngineMFBC})
		if err != nil {
			log.Fatal(err)
		}
		approxTop := repro.TopK(approx.BC, 10)
		fmt.Printf("samples=%3d (%.1f%% of sources): top-10 overlap %d/10\n",
			samples, 100*float64(samples)/float64(g.N), overlap(exactTop, approxTop))
	}

	// Multi-source shortest paths with multiplicities, distributed on a
	// simulated 8-processor machine.
	sources := []int32{0, 1, 2, 3}
	sp, err := repro.ShortestPaths(g, sources, repro.Options{Procs: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshortest paths from %v (%d Bellman-Ford rounds):\n", sources, sp.Iterations)
	for s := range sources {
		reachable, multi := 0, 0.0
		far := 0.0
		for v := range sp.Dist[s] {
			if sp.Counts[s][v] > 0 {
				reachable++
				multi += sp.Counts[s][v]
				if sp.Dist[s][v] > far {
					far = sp.Dist[s][v]
				}
			}
		}
		fmt.Printf("  source %d: %d reachable, eccentricity %.0f, avg path multiplicity %.2f\n",
			sources[s], reachable, far, multi/float64(reachable))
	}
}

func overlap(a, b []int) int {
	sort.Ints(append([]int{}, a...))
	set := map[int]bool{}
	for _, x := range a {
		set[x] = true
	}
	n := 0
	for _, x := range b {
		if set[x] {
			n++
		}
	}
	return n
}
