// Social-network analysis: identify influencers in an Orkut-like community
// graph on a simulated 16-processor machine, comparing the paper's MFBC
// engine against the CombBLAS-style baseline — the head-to-head of the
// paper's Figure 1.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g, err := repro.StandinGraph("orkut-sim", 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community graph %s: n=%d m=%d avg degree %.1f\n",
		g.Name, g.N, g.M(), g.AvgDegree())

	// A single batch of 64 sources approximates the full centrality ranking
	// at a fraction of the cost (the paper's batched benchmark mode).
	sources := make([]int32, 64)
	for i := range sources {
		sources[i] = int32(i * (g.N / len(sources)))
	}

	for _, engine := range []repro.Engine{repro.EngineMFBC, repro.EngineCombBLAS} {
		res, err := repro.Compute(g, repro.Options{
			Engine:  engine,
			Procs:   16,
			Sources: sources,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on p=%d (plan %s):\n", engine, res.Procs, res.Plan)
		fmt.Printf("  critical path: %.2f MB, %d messages, modeled %.4fs (%.1f%% communication)\n",
			float64(res.Comm.Bytes)/1e6, res.Comm.Msgs, res.Comm.ModelSec,
			100*res.Comm.CommSec/res.Comm.ModelSec)
		fmt.Println("  top influencers (partial BC over the source batch):")
		for rank, v := range repro.TopK(res.BC, 5) {
			fmt.Printf("    #%d vertex %-6d score %.1f\n", rank+1, v, res.BC[v])
		}
	}
}
