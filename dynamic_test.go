package repro

// Differential harness for the streaming subsystem: seeded mutation
// sequences (inserts, deletes, weight changes, vertex additions) on the
// same topology families as difftest_test.go. After EVERY prefix of the
// sequence the maintained scores must match a from-scratch Compute on the
// mutated topology within 1e-9 — for the always-incremental engine, the
// default engine (threshold fallback), and an aggressive-fallback engine.
//
// MFBC_DIFFTEST_SEEDS=n widens the seed matrix, as in the static harness.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/graph"
	"repro/internal/spgemm"
)

func dynSeeds() []int64 {
	n := 1
	if s := os.Getenv("MFBC_DIFFTEST_SEEDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(31 + 7*i)
	}
	return out
}

// dynMutation draws one valid mutation for g's current topology.
func dynMutation(rng *rand.Rand, g *Graph, weighted bool) Mutation {
	for tries := 0; tries < 200; tries++ {
		switch rng.Intn(12) {
		case 0:
			return Mutation{Op: MutAddVertex}
		case 1, 2, 3:
			if g.M() <= g.N/2 {
				continue
			}
			e := g.Edges[rng.Intn(g.M())]
			return Mutation{Op: MutRemoveEdge, U: e.U, V: e.V}
		case 4, 5:
			if !weighted || g.M() == 0 {
				continue
			}
			e := g.Edges[rng.Intn(g.M())]
			return Mutation{Op: MutSetWeight, U: e.U, V: e.V, W: float64(1 + rng.Intn(9))}
		default:
			u, v := int32(rng.Intn(g.N)), int32(rng.Intn(g.N))
			if u == v {
				continue
			}
			if _, exists := g.FindEdge(u, v); exists {
				continue
			}
			w := 1.0
			if weighted {
				w = float64(1 + rng.Intn(9))
			}
			return Mutation{Op: MutAddEdge, U: u, V: v, W: w}
		}
	}
	return Mutation{Op: MutAddVertex}
}

func TestDynamicDifferential(t *testing.T) {
	topologies := []struct {
		name     string
		build    func(seed int64) *Graph
		weighted bool
	}{
		{"rmat", func(seed int64) *Graph { return RMATGraph(6, 6, seed) }, false},
		{"rmat-weighted", func(seed int64) *Graph {
			g := RMATGraph(6, 6, seed)
			g.AddUniformWeights(1, 9, seed+1)
			return g
		}, true},
		{"uniform-directed", func(seed int64) *Graph { return UniformGraph(48, 150, true, seed) }, false},
		{"grid-weighted", func(seed int64) *Graph { return GridGraph(6, 6, 8, seed) }, true},
	}
	engines := []struct {
		name string
		opt  DynamicOptions
	}{
		{"incremental", DynamicOptions{DirtyThreshold: -1}},
		{"default", DynamicOptions{}},
		{"eager-full", DynamicOptions{DirtyThreshold: 0.02}},
	}
	for _, topo := range topologies {
		for _, eng := range engines {
			for _, seed := range dynSeeds() {
				t.Run(fmt.Sprintf("%s/%s/seed%d", topo.name, eng.name, seed), func(t *testing.T) {
					g := topo.build(seed)
					dyn, err := NewDynamicBC(g, eng.opt)
					if err != nil {
						t.Fatal(err)
					}
					shadow := g.Clone()
					rng := rand.New(rand.NewSource(seed * 17))
					for step := 0; step < 6; step++ {
						batch := make([]Mutation, 1+rng.Intn(3))
						for i := range batch {
							batch[i] = dynMutation(rng, shadow, topo.weighted)
							if err := shadow.Apply(batch[i]); err != nil {
								t.Fatalf("step %d: shadow: %v", step, err)
							}
						}
						rep, err := dyn.Apply(batch)
						if err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						snap := dyn.Scores()
						if snap.Version != rep.Version || snap.Version != Fingerprint(shadow) {
							t.Fatalf("step %d: version mismatch vs shadow replay", step)
						}
						want, err := Compute(shadow, Options{Engine: EngineMFBC})
						if err != nil {
							t.Fatalf("step %d: from-scratch: %v", step, err)
						}
						if len(snap.BC) != len(want.BC) {
							t.Fatalf("step %d: score length %d vs %d", step, len(snap.BC), len(want.BC))
						}
						for v := range want.BC {
							if !almostEqual(snap.BC[v], want.BC[v]) {
								t.Fatalf("step %d (%s): bc[%d] = %v, from-scratch %v",
									step, rep.Strategy, v, snap.BC[v], want.BC[v])
							}
						}
					}
					st := dyn.Stats()
					if st.Applies != 6 {
						t.Fatalf("applies = %d", st.Applies)
					}
					if eng.name == "incremental" && st.FullRecomputes != 0 {
						t.Fatalf("always-incremental engine recomputed fully: %+v", st)
					}
				})
			}
		}
	}
}

// TestDynamicDistributedDifferential replays seeded mutation sequences
// through distributed-mode engines — procs 2 and 4 under 1D/2D/3D plan
// constraints — comparing every prefix against a from-scratch
// repro.Compute at 1e-9, and pins that delta-patched operands produce
// bit-identical plans and scores to full per-apply redistribution.
// MFBC_DIFFTEST_SEEDS widens the seed matrix as in the static harness.
func TestDynamicDistributedDifferential(t *testing.T) {
	topologies := []struct {
		name     string
		build    func(seed int64) *Graph
		weighted bool
	}{
		{"rmat", func(seed int64) *Graph { return RMATGraph(5, 6, seed) }, false},
		{"grid-weighted", func(seed int64) *Graph { return GridGraph(6, 6, 8, seed) }, true},
	}
	engines := []struct {
		name string
		opt  DynamicOptions
	}{
		{"p2", DynamicOptions{Procs: 2, Workers: 1}},
		{"p2-1d", DynamicOptions{Procs: 2, Workers: 1, Constraint: spgemm.Only1D}},
		{"p4-2d", DynamicOptions{Procs: 4, Workers: 1, Constraint: spgemm.Only2D}},
		{"p4-3d", DynamicOptions{Procs: 4, Workers: 1, Constraint: spgemm.Only3D}},
	}
	for _, topo := range topologies {
		for _, eng := range engines {
			for _, seed := range dynSeeds() {
				t.Run(fmt.Sprintf("%s/%s/seed%d", topo.name, eng.name, seed), func(t *testing.T) {
					g := topo.build(seed)
					// NoFuse keeps the patched engine on the two-region
					// path: this differential pins operand delta-patching
					// against full redistribution, so both engines must
					// execute the same region structure (the fused form
					// has its own differential below).
					patchedOpt := eng.opt
					patchedOpt.NoFuse = true
					dyn, err := NewDynamicBC(g, patchedOpt)
					if err != nil {
						t.Fatal(err)
					}
					rebuildOpt := eng.opt
					rebuildOpt.DistRebuild = true
					rebuild, err := NewDynamicBC(g, rebuildOpt)
					if err != nil {
						t.Fatal(err)
					}
					shadow := g.Clone()
					rng := rand.New(rand.NewSource(seed * 13))
					for step := 0; step < 4; step++ {
						batch := make([]Mutation, 1+rng.Intn(2))
						for i := range batch {
							batch[i] = dynMutation(rng, shadow, topo.weighted)
							if err := shadow.Apply(batch[i]); err != nil {
								t.Fatalf("step %d: shadow: %v", step, err)
							}
						}
						rep, err := dyn.Apply(batch)
						if err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						rrep, err := rebuild.Apply(batch)
						if err != nil {
							t.Fatalf("step %d: rebuild engine: %v", step, err)
						}
						if rep.Plan != rrep.Plan {
							t.Fatalf("step %d: plans diverged: patched %q vs rebuilt %q", step, rep.Plan, rrep.Plan)
						}
						snap := dyn.Scores()
						if snap.Version != Fingerprint(shadow) {
							t.Fatalf("step %d: version mismatch vs shadow replay", step)
						}
						rsnap := rebuild.Scores()
						for v := range snap.BC {
							if snap.BC[v] != rsnap.BC[v] {
								t.Fatalf("step %d: bc[%d] bit-diverged between delta-patch and full redistribution: %v vs %v",
									step, v, snap.BC[v], rsnap.BC[v])
							}
						}
						want, err := Compute(shadow, Options{Engine: EngineMFBC})
						if err != nil {
							t.Fatalf("step %d: from-scratch: %v", step, err)
						}
						for v := range want.BC {
							if !almostEqual(snap.BC[v], want.BC[v]) {
								t.Fatalf("step %d (%s): bc[%d] = %v, from-scratch %v",
									step, rep.Strategy, v, snap.BC[v], want.BC[v])
							}
						}
					}
					// The engine's runs really happened on the machine model.
					if st := dyn.Stats(); st.Comm.Runs == 0 || st.Comm.Bytes == 0 {
						t.Fatalf("distributed engine accumulated no modeled communication: %+v", st.Comm)
					}
				})
			}
		}
	}
}

// TestDynamicAgainstBrandesOracle cross-checks the maintained scores
// against the textbook oracle (not just MFBC-vs-MFBC) after a burst of
// mutations.
func TestDynamicAgainstBrandesOracle(t *testing.T) {
	g := RMATGraph(6, 8, 5)
	dyn, err := NewDynamicBC(g, DynamicOptions{DirtyThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	shadow := g.Clone()
	var batch []Mutation
	for i := 0; i < 10; i++ {
		m := dynMutation(rng, shadow, false)
		if err := shadow.Apply(m); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, m)
	}
	if _, err := dyn.Apply(batch); err != nil {
		t.Fatal(err)
	}
	oracle, err := Compute(dyn.Graph(), Options{Engine: EngineBrandes})
	if err != nil {
		t.Fatal(err)
	}
	snap := dyn.Scores()
	for v := range oracle.BC {
		if !almostEqual(snap.BC[v], oracle.BC[v]) {
			t.Fatalf("bc[%d] = %v, Brandes %v", v, snap.BC[v], oracle.BC[v])
		}
	}
}

// TestDynamicMutationsReexported pins the façade surface: graph-layer ops
// round-trip through the repro aliases.
func TestDynamicMutationsReexported(t *testing.T) {
	if MutAddEdge != graph.OpAddEdge || MutRemoveEdge != graph.OpRemoveEdge ||
		MutSetWeight != graph.OpSetWeight || MutAddVertex != graph.OpAddVertex {
		t.Fatal("mutation op aliases drifted from internal/graph")
	}
	g := GridGraph(3, 3, 1, 1)
	dyn, err := NewDynamicBC(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.Apply([]Mutation{{Op: "bogus"}}); err == nil {
		t.Fatal("unknown op accepted through the façade")
	}
	rep, err := dyn.Apply([]Mutation{{Op: MutAddVertex}, {Op: MutAddEdge, U: 0, V: 9, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 10 || rep.Applied != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if got := dyn.Graph().N; got != 10 {
		t.Fatalf("graph n = %d", got)
	}
	if len(dyn.Log()) != 2 {
		t.Fatalf("log len = %d", len(dyn.Log()))
	}
}

// TestDynamicFusedDifferential is the fused-apply differential at the
// façade level: for every seeded mutation prefix, a fused engine and the
// two-region ablation (NoFuse) must agree — bit-identically under a forced
// decomposition plan, within 1e-9 under automatic planning — while every
// fused incremental apply spends strictly fewer modeled messages, and both
// match a from-scratch Compute. MFBC_DIFFTEST_SEEDS widens the matrix.
func TestDynamicFusedDifferential(t *testing.T) {
	forced := spgemm.Plan{P1: 1, P2: 2, P3: 2, X: spgemm.RoleA, YZ: spgemm.VarBC}
	engines := []struct {
		name string
		opt  DynamicOptions
	}{
		{"p4-forced", DynamicOptions{Procs: 4, Workers: 1, Plan: &forced, DirtyThreshold: -1}},
		{"p4-auto", DynamicOptions{Procs: 4, Workers: 1, DirtyThreshold: -1}},
		{"p2-1d", DynamicOptions{Procs: 2, Workers: 1, Constraint: spgemm.Only1D, DirtyThreshold: -1}},
	}
	for _, eng := range engines {
		for _, seed := range dynSeeds() {
			t.Run(fmt.Sprintf("%s/seed%d", eng.name, seed), func(t *testing.T) {
				g := GridGraph(6, 6, 8, seed)
				fused, err := NewDynamicBC(g, eng.opt)
				if err != nil {
					t.Fatal(err)
				}
				legacyOpt := eng.opt
				legacyOpt.NoFuse = true
				legacy, err := NewDynamicBC(g, legacyOpt)
				if err != nil {
					t.Fatal(err)
				}
				shadow := g.Clone()
				rng := rand.New(rand.NewSource(seed*17 + 5))
				sawFused := false
				for step := 0; step < 4; step++ {
					batch := make([]Mutation, 1+rng.Intn(2))
					for i := range batch {
						batch[i] = dynMutation(rng, shadow, true)
						if batch[i].Op == MutAddVertex {
							// Keep this stream on fused-eligible steps; the
							// growth fallback is covered by the distributed
							// differential above.
							e := shadow.Edges[rng.Intn(shadow.M())]
							batch[i] = Mutation{Op: MutSetWeight, U: e.U, V: e.V, W: float64(1 + rng.Intn(9))}
						}
						if err := shadow.Apply(batch[i]); err != nil {
							t.Fatalf("step %d: shadow: %v", step, err)
						}
					}
					frep, err := fused.Apply(batch)
					if err != nil {
						t.Fatalf("step %d: fused: %v", step, err)
					}
					lrep, err := legacy.Apply(batch)
					if err != nil {
						t.Fatalf("step %d: two-region: %v", step, err)
					}
					fs, ls := fused.Scores(), legacy.Scores()
					if eng.opt.Plan != nil {
						for v := range fs.BC {
							if fs.BC[v] != ls.BC[v] {
								t.Fatalf("step %d: bc[%d] bit-diverged: fused %v vs two-region %v", step, v, fs.BC[v], ls.BC[v])
							}
						}
					} else {
						for v := range fs.BC {
							if !almostEqual(fs.BC[v], ls.BC[v]) {
								t.Fatalf("step %d: bc[%d]: fused %v vs two-region %v", step, v, fs.BC[v], ls.BC[v])
							}
						}
					}
					want, err := Compute(shadow, Options{Engine: EngineMFBC})
					if err != nil {
						t.Fatalf("step %d: from-scratch: %v", step, err)
					}
					for v := range want.BC {
						if !almostEqual(fs.BC[v], want.BC[v]) {
							t.Fatalf("step %d: bc[%d] = %v, from-scratch %v", step, v, fs.BC[v], want.BC[v])
						}
					}
					if frep.Strategy == "incremental" && frep.Affected > 0 {
						if !frep.Fused {
							t.Fatalf("step %d: incremental distributed apply did not fuse", step)
						}
						sawFused = true
						if frep.Comm.Msgs >= lrep.Comm.Msgs {
							t.Fatalf("step %d: fused apply spent %d msgs vs two-region %d", step, frep.Comm.Msgs, lrep.Comm.Msgs)
						}
					}
				}
				if !sawFused {
					t.Fatal("stream never exercised a fused apply; differential is vacuous")
				}
			})
		}
	}
}
