package repro

import (
	"math/rand"
	"sort"
	"testing"
)

// topKRef is the reference selection: full sort by (score desc, index asc).
func topKRef(bc []float64, k int) []int {
	idx := make([]int, len(bc))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if bc[idx[a]] != bc[idx[b]] {
			return bc[idx[a]] > bc[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k < 0 {
		k = 0
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func TestTopKTies(t *testing.T) {
	// Equal scores must rank by ascending vertex index.
	bc := []float64{5, 2, 5, 5, 2}
	got := TopK(bc, 4)
	want := []int{0, 2, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v want %v", got, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	bc := []float64{3, 1, 2}
	if got := TopK(bc, 0); len(got) != 0 {
		t.Fatalf("k=0 must be empty, got %v", got)
	}
	if got := TopK(bc, -2); len(got) != 0 {
		t.Fatalf("negative k must be empty, got %v", got)
	}
	if got := TopK(bc, 99); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("k>n must clamp to a full descending ranking, got %v", got)
	}
	if got := TopK(nil, 5); len(got) != 0 {
		t.Fatalf("empty input must be empty, got %v", got)
	}
	if got := TopK([]float64{7}, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton, got %v", got)
	}
}

func TestTopKAgreesWithFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		bc := make([]float64, n)
		for i := range bc {
			// Few distinct values → many ties exercise the tie-break.
			bc[i] = float64(rng.Intn(8))
		}
		for _, k := range []int{0, 1, 2, n / 2, n - 1, n, n + 3} {
			got := TopK(bc, k)
			want := topKRef(bc, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d want %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: TopK=%v ref=%v (bc=%v)", n, k, got, want, bc)
				}
			}
		}
	}
}
